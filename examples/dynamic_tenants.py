#!/usr/bin/env python3
"""Dynamic tenant arrival and departure (paper Section VI-C).

MPS-style deployments start and stop tenants at arbitrary times.  DWS
handles this by recomputing the walker partition (the TWM/WTM tables)
whenever the tenant set changes; in-flight walks are unaffected and the
system "quickly converges to expected behavior".

This example drives the GPU directly through the library API (below the
MultiTenantManager): tenant 0 starts alone and owns all 16 walkers;
tenant 1 arrives mid-run and the pool re-partitions to 8+8; tenant 1
finishes and departs; tenant 0 reclaims all walkers.

Run:  python examples/dynamic_tenants.py
"""

from repro import GpuConfig, benchmark
from repro.engine.rng import DeterministicRng
from repro.engine.simulator import Simulator
from repro.gpu.gpu import Gpu


def owned_walkers(gpu, tenant_id):
    policy = gpu.walk_subsystem_for(tenant_id).policy
    return policy.twm.owned_walkers(tenant_id)


def main() -> None:
    sim = Simulator()
    config = GpuConfig.baseline(num_sms=8).with_policy("dws")
    gpu = Gpu(sim, config, tenant_ids=[0, 1])
    rng = DeterministicRng(0)

    # ---- phase 1: tenant 0 alone --------------------------------------
    gpu.add_tenant(0)
    heavy = benchmark("SAD", scale=2.0)
    gpu.launch_warps(0, heavy.build_streams(24, rng.fork("t0")))
    print(f"t={sim.now}: tenant 0 arrives; owns walkers "
          f"{owned_walkers(gpu, 0)}")

    sim.run(until=20_000)
    walks_before = sim.stats.counter("pws.completed.tenant0").value
    print(f"t={sim.now}: tenant 0 completed {walks_before} walks "
          f"using the full pool")

    # ---- phase 2: tenant 1 arrives ------------------------------------
    gpu.add_tenant(1)  # Section VI-C: TWM/WTM updated, walks undisturbed
    light = benchmark("JPEG", scale=0.2)
    done = []
    gpu.tenants[1].on_complete = lambda: done.append(sim.now)
    gpu.launch_warps(1, light.build_streams(16, rng.fork("t1")))
    print(f"t={sim.now}: tenant 1 arrives; partition is now "
          f"{owned_walkers(gpu, 0)} / {owned_walkers(gpu, 1)}")

    sim.run(stop_when=lambda: bool(done))
    print(f"t={sim.now}: tenant 1 finished "
          f"({sim.stats.counter('pws.completed.tenant1').value} walks, "
          f"{sim.stats.counter('pws.stolen.tenant0').value} of tenant 0's "
          f"walks were stolen by tenant 1's idle walkers)")

    # ---- phase 3: tenant 1 departs ------------------------------------
    gpu.walk_subsystem_for(1).unregister_tenant(1)
    gpu.l2_tlb_for(1).invalidate_tenant(1)
    print(f"t={sim.now}: tenant 1 departs; tenant 0 reclaims walkers "
          f"{owned_walkers(gpu, 0)}")

    sim.drain()
    total = sim.stats.counter("pws.completed.tenant0").value
    print(f"t={sim.now}: tenant 0 ran to completion with {total} walks; "
          "no walk was lost across either transition")


if __name__ == "__main__":
    main()
