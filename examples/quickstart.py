#!/usr/bin/env python3
"""Quickstart: two tenants on one GPU, baseline vs. dynamic walk stealing.

Runs the paper's headline scenario — a page-walk-heavy tenant (GUPS)
co-running with a moderate one (JPEG) — under today's shared page walk
queue and under DWS, and prints throughput, per-tenant IPC, walk
latencies and the interleaving each tenant suffered.

Run:  python examples/quickstart.py [--scale 0.5]
"""

import argparse

from repro import GpuConfig, MultiTenantManager, Tenant, benchmark
from repro.metrics import interleaving_of, total_ipc, walk_latency_of


def run(policy: str, scale: float):
    config = GpuConfig.baseline().with_policy(policy)
    tenants = [
        Tenant(0, benchmark("GUPS", scale=scale)),
        Tenant(1, benchmark("JPEG", scale=scale)),
    ]
    return MultiTenantManager(config, tenants, warps_per_sm=4).run()


def describe(label: str, result) -> None:
    print(f"\n--- {label} ---")
    print(f"total IPC (throughput): {total_ipc(result):.3f}")
    for t in result.tenant_ids:
        stats = result.tenants[t]
        print(
            f"  tenant {t} ({stats.workload_name:5s}): "
            f"IPC {stats.ipc:7.3f}  "
            f"walk latency {walk_latency_of(result, t):7.0f} cyc  "
            f"interleaving {interleaving_of(result, t):7.2f} walks"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5,
                        help="workload length multiplier (default 0.5)")
    args = parser.parse_args()

    print("Simulating GUPS (Heavy) + JPEG (Medium) on a 30-SM GPU")
    print("(paper Table I hardware: 1024-entry L2 TLB, 16 page walkers)")

    baseline = run("baseline", args.scale)
    describe("baseline: shared page walk queue", baseline)

    dws = run("dws", args.scale)
    describe("DWS: dynamic page walk stealing", dws)

    speedup = total_ipc(dws) / total_ipc(baseline)
    print(f"\nDWS throughput speedup over baseline: {speedup:.2f}x")
    print("Note how JPEG's walk interleaving collapses under DWS: its")
    print("walks no longer queue behind GUPS's page walk storm.")


if __name__ == "__main__":
    main()
