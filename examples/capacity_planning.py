#!/usr/bin/env python3
"""Capacity planning: how many walkers / TLB entries does a design need?

An architect sizing the next GPU's MMU can ask: with DWS in place, can
we ship fewer page walkers or a smaller L2 TLB?  This example sweeps
walker count and L2 TLB capacity for a contentious pair and reports the
throughput of each (hardware, policy) point — reproducing the
Figure 12 methodology as a design-space exploration tool.

Run:  python examples/capacity_planning.py [--pair GUPS.3DS] [--scale 0.4]
"""

import argparse

from repro import GpuConfig, Session
from repro.metrics import total_ipc
from repro.workloads.pairs import split_pair


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pair", default="GUPS.3DS")
    parser.add_argument("--scale", type=float, default=0.4)
    args = parser.parse_args()

    session = Session(scale=args.scale, warps_per_sm=4)
    reference = session.run_pair(args.pair, GpuConfig.baseline())
    reference_ipc = total_ipc(reference)

    print(f"pair {args.pair}; throughput normalized to the Table I "
          "baseline (1024-entry TLB, 16 walkers, shared queue)\n")
    print(f"{'hardware':<24} {'baseline':>9} {'dws':>9} {'dws gain':>9}")
    print("-" * 54)

    points = [
        ("512-entry TLB", GpuConfig.baseline().with_l2_tlb_entries(512)),
        ("1024-entry TLB", GpuConfig.baseline()),
        ("2048-entry TLB", GpuConfig.baseline().with_l2_tlb_entries(2048)),
        ("8 walkers", GpuConfig.baseline().with_walker_count(8)),
        ("12 walkers", GpuConfig.baseline().with_walker_count(12)),
        ("16 walkers", GpuConfig.baseline()),
        ("24 walkers", GpuConfig.baseline().with_walker_count(24)),
        ("2048 TLB + 24 walkers",
         GpuConfig.baseline().with_l2_tlb_entries(2048).with_walker_count(24)),
    ]
    for label, cfg in points:
        base = total_ipc(session.run_pair(args.pair, cfg)) / reference_ipc
        dws = total_ipc(
            session.run_pair(args.pair, cfg.with_policy("dws"))
        ) / reference_ipc
        gain = dws / base if base else float("nan")
        print(f"{label:<24} {base:>8.3f}x {dws:>8.3f}x {gain:>8.3f}x")

    print("\nReading the table: if '12 walkers + DWS' matches '16 walkers")
    print("baseline', the soft-partitioned design ships fewer walkers for")
    print("the same multi-tenant throughput.")


if __name__ == "__main__":
    main()
