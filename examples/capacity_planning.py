#!/usr/bin/env python3
"""Capacity planning: how many walkers / TLB entries does a design need?

An architect sizing the next GPU's MMU can ask: with DWS in place, can
we ship fewer page walkers or a smaller L2 TLB?  This example sweeps
walker count and L2 TLB capacity for a contentious pair and reports the
throughput of each (hardware, policy) point — reproducing the
Figure 12 methodology as a design-space exploration tool.

With a running ``python -m repro serve`` (pass ``--server URL`` or set
``REPRO_SERVE_URL``) the sweep is issued as placement queries instead
of local simulations — a warm shared cache answers in milliseconds, and
degraded tiers are marked with ``~`` (estimate) or ``n/a`` (no answer
within the deadline yet).  Without a reachable server the example runs
the library directly, exactly as before.

Run:  python examples/capacity_planning.py [--pair GUPS.3DS] [--scale 0.4]
"""

import argparse
import sys

from repro import GpuConfig, Session
from repro.metrics import total_ipc
from repro.workloads.pairs import split_pair

#: (label, L2 TLB entries override, walker count override); ``None``
#: keeps the Table I baseline value (1024 entries / 16 walkers).
POINTS = [
    ("512-entry TLB", 512, None),
    ("1024-entry TLB", None, None),
    ("2048-entry TLB", 2048, None),
    ("8 walkers", None, 8),
    ("12 walkers", None, 12),
    ("16 walkers", None, None),
    ("24 walkers", None, 24),
    ("2048 TLB + 24 walkers", 2048, 24),
]


def config_for(tlb, walkers) -> GpuConfig:
    cfg = GpuConfig.baseline()
    if tlb is not None:
        cfg = cfg.with_l2_tlb_entries(tlb)
    if walkers is not None:
        cfg = cfg.with_walker_count(walkers)
    return cfg


def print_header(pair: str) -> None:
    print(f"pair {pair}; throughput normalized to the Table I "
          "baseline (1024-entry TLB, 16 walkers, shared queue)\n")
    print(f"{'hardware':<24} {'baseline':>9} {'dws':>9} {'dws gain':>9}")
    print("-" * 54)


def print_footer() -> None:
    print("\nReading the table: if '12 walkers + DWS' matches '16 walkers")
    print("baseline', the soft-partitioned design ships fewer walkers for")
    print("the same multi-tenant throughput.")


def run_with_library(args) -> None:
    session = Session(scale=args.scale, warps_per_sm=4)
    reference = session.run_pair(args.pair, GpuConfig.baseline())
    reference_ipc = total_ipc(reference)

    print_header(args.pair)
    for label, tlb, walkers in POINTS:
        cfg = config_for(tlb, walkers)
        base = total_ipc(session.run_pair(args.pair, cfg)) / reference_ipc
        dws = total_ipc(
            session.run_pair(args.pair, cfg.with_policy("dws"))
        ) / reference_ipc
        gain = dws / base if base else float("nan")
        print(f"{label:<24} {base:>8.3f}x {dws:>8.3f}x {gain:>8.3f}x")
    print_footer()


def run_with_server(args, url: str) -> bool:
    """Issue the sweep as serve queries; False falls back to the library."""
    from repro.serve.client import ServeClient, ServeUnavailable
    from repro.serve.queries import PlacementQuery

    names = split_pair(args.pair)
    client = ServeClient(url)

    def point_ipc(policy, tlb, walkers):
        """(total IPC or None, was it an estimate?)"""
        reply = client.query(PlacementQuery(
            kind="metrics", workloads=names, policy=policy,
            l2_tlb_entries=tlb, walker_count=walkers,
            deadline_s=args.deadline))
        value = reply.payload.get("total_ipc")
        return (float(value) if value is not None else None), reply.estimate

    try:
        reference_ipc, _ = point_ipc("baseline", None, None)
        if not reference_ipc:
            print(f"server {url} has no baseline answer yet; "
                  "falling back to the library", file=sys.stderr)
            return False
        print(f"(answers from {url})")
        print_header(args.pair)
        for label, tlb, walkers in POINTS:
            cells = []
            values = {}
            for policy in ("baseline", "dws"):
                ipc, estimated = point_ipc(policy, tlb, walkers)
                if ipc is None:
                    cells.append(f"{'n/a':>9}")
                else:
                    values[policy] = ipc / reference_ipc
                    mark = "~" if estimated else "x"
                    cells.append(f"{values[policy]:>8.3f}{mark}")
            if "baseline" in values and "dws" in values and values["baseline"]:
                gain = f"{values['dws'] / values['baseline']:>8.3f}x"
            else:
                gain = f"{'n/a':>9}"
            print(f"{label:<24} {cells[0]} {cells[1]} {gain}")
        print_footer()
        print("\n('~' marks interpolated estimates; 'n/a' means the "
              "simulation is still running — re-run to pick it up.)")
        return True
    except ServeUnavailable as exc:
        print(f"server unavailable ({exc}); falling back to the library",
              file=sys.stderr)
        return False


def main() -> None:
    from repro.serve.client import server_url

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pair", default="GUPS.3DS")
    parser.add_argument("--scale", type=float, default=0.4)
    parser.add_argument("--server", default=None,
                        help="repro serve base URL (default: "
                             "$REPRO_SERVE_URL, else run locally)")
    parser.add_argument("--deadline", type=float, default=60.0,
                        help="per-query deadline when using --server")
    args = parser.parse_args()

    url = server_url(args.server)
    if url is not None and run_with_server(args, url):
        return
    run_with_library(args)


if __name__ == "__main__":
    main()
