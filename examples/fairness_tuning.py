#!/usr/bin/env python3
"""Tuning the throughput/fairness knob of DWS++ (paper Figure 10).

A deployment that sells QoS guarantees cares about fairness; a batch
cluster cares about throughput.  DWS++ exposes the trade-off through
its stealing-aggressiveness parameters (DIFF_THRES schedule and
QUEUE_THRES, paper Tables IV/VII).  This example runs one contentious
pair under the three shipped presets plus a custom schedule, and prints
where each lands on the throughput/fairness plane.

Run:  python examples/fairness_tuning.py [--pair BLK.3DS] [--scale 0.5]
"""

import argparse

from repro import DwsPlusParams, GpuConfig, Session
from repro.metrics import fairness, total_ipc
from repro.workloads.pairs import split_pair


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pair", default="BLK.3DS")
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args()

    session = Session(scale=args.scale, warps_per_sm=4)
    names = split_pair(args.pair)
    standalone = session.standalone_ipcs(names)
    base_cfg = GpuConfig.baseline()
    base = session.run_pair(args.pair, base_cfg)
    base_ipc = total_ipc(base)

    # a custom schedule: steal eagerly below 2x rate skew, never above
    custom = DwsPlusParams(
        schedule=((2.0, 0.35), (float("inf"), None)),
        queue_thres=0.4,
        initial_diff_thres=0.35,
    )

    configs = {
        "baseline (shared queue)": base_cfg,
        "dws (steal on idle only)": base_cfg.with_policy("dws"),
        "dws++ conservative": base_cfg.with_policy("dwspp",
                                                   preset="conservative"),
        "dws++ default": base_cfg.with_policy("dwspp"),
        "dws++ aggressive": base_cfg.with_policy("dwspp",
                                                 preset="aggressive"),
        "dws++ custom schedule": base_cfg.with_policy("dwspp", params=custom),
    }

    print(f"pair {args.pair}: throughput (vs baseline) and fairness")
    print(f"{'configuration':<26} {'throughput':>10} {'fairness':>9}")
    print("-" * 48)
    for label, cfg in configs.items():
        run = session.run_pair(args.pair, cfg)
        thr = total_ipc(run) / base_ipc
        fair = fairness(run, standalone)
        print(f"{label:<26} {thr:>9.3f}x {fair:>9.3f}")

    print("\nMore aggressive stealing trades a little throughput for")
    print("fairness; 'no stealing above the skew bound' schedules protect")
    print("a moderate-rate tenant from a page-walk-storming neighbour.")


if __name__ == "__main__":
    main()
