#!/usr/bin/env python3
"""How trustworthy is a measured speedup?  Seed-stability methodology.

Simulation papers report point estimates; good methodology checks them
against seed noise.  This example measures the DWS-over-baseline
throughput ratio for one pair across several seeds using the
seed-matched comparison in :mod:`repro.harness.seeds`, and reports the
spread — so a user knows whether a small effect is signal.

Run:  python examples/seed_stability.py [--pair GUPS.JPEG] [--seeds 4]
"""

import argparse

from repro import GpuConfig
from repro.harness.seeds import compare_policies, seed_study


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pair", default="GUPS.JPEG")
    parser.add_argument("--seeds", type=int, default=4)
    parser.add_argument("--scale", type=float, default=0.25)
    args = parser.parse_args()

    seeds = tuple(range(args.seeds))
    base = GpuConfig.baseline()
    comparison = compare_policies(
        args.pair, base, base.with_policy("dws"),
        seeds=seeds, scale=args.scale,
        label_a="baseline", label_b="dws",
    )

    print(f"{args.pair}: DWS vs baseline across {len(seeds)} seeds\n")
    print(f"{'seed':>4} {'baseline':>10} {'dws':>10} {'ratio':>7}")
    for seed, (a, b, r) in enumerate(zip(comparison.stats_a.values,
                                         comparison.stats_b.values,
                                         comparison.ratios)):
        print(f"{seed:>4} {a:>10.3f} {b:>10.3f} {r:>6.3f}x")

    print(f"\nmean speedup : {comparison.mean_ratio:.3f}x")
    print(f"baseline CV  : {comparison.stats_a.cv * 100:.2f}% "
          f"(run-to-run noise)")
    print(f"dws CV       : {comparison.stats_b.cv * 100:.2f}%")
    verdict = ("every seed agrees on the winner"
               if comparison.consistent_direction
               else "seeds DISAGREE on the winner - treat the mean with care")
    print(f"direction    : {verdict}")

    # bonus: absolute spread of one configuration on its own
    solo = seed_study(args.pair, base, seeds=seeds, scale=args.scale)
    print(f"\nbaseline total IPC across seeds: "
          f"min {solo.minimum:.3f} / mean {solo.mean:.3f} / "
          f"max {solo.maximum:.3f}")


if __name__ == "__main__":
    main()
