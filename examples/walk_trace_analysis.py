#!/usr/bin/env python3
"""Inspecting the page walk subsystem with the built-in tracer.

The :class:`repro.engine.trace.Tracer` records the lifecycle of every
page walk (enqueue, service start / steal, completion).  This example
attaches one to a contended run and mines the records for the story the
aggregate metrics summarize: how long walks queued, which walkers
serviced stolen work, and the longest cross-tenant wait any single walk
experienced.

Run:  python examples/walk_trace_analysis.py [--policy dws]
"""

import argparse
from collections import Counter

from repro import GpuConfig, MultiTenantManager, Tenant, benchmark
from repro.engine.trace import Tracer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--policy", default="dws",
                        choices=["baseline", "static", "dws", "dwspp"])
    parser.add_argument("--scale", type=float, default=0.3)
    args = parser.parse_args()

    config = GpuConfig.baseline().with_policy(args.policy)
    manager = MultiTenantManager(
        config,
        [Tenant(0, benchmark("GUPS", scale=args.scale)),
         Tenant(1, benchmark("JPEG", scale=args.scale))],
        warps_per_sm=4,
    )
    tracer = Tracer(capacity=500_000)
    manager.gpu.walk_subsystem_for(0).tracer = tracer
    manager.run()

    starts = tracer.records("walk.start") + tracer.records("walk.steal")
    completes = tracer.records("walk.complete")
    print(f"policy={args.policy}: traced {len(starts)} serviced walks "
          f"({tracer.count('walk.steal')} stolen, "
          f"{tracer.count('walk.overflow')} overflowed arrivals)")

    for tenant in (0, 1):
        waits = [r.fields["waited"] for r in starts
                 if r.fields["tenant"] == tenant]
        inter = [r.fields["interleaved"] for r in starts
                 if r.fields["tenant"] == tenant]
        if not waits:
            continue
        waits.sort()
        print(f"\ntenant {tenant}: {len(waits)} walks")
        print(f"  queueing   p50={waits[len(waits) // 2]:6d}  "
              f"p99={waits[int(len(waits) * 0.99)]:6d}  max={waits[-1]:6d} cyc")
        print(f"  interleave mean={sum(inter) / len(inter):6.2f}  "
              f"max={max(inter)}")

    steal_walkers = Counter(r.fields["walker"]
                            for r in tracer.records("walk.steal"))
    if steal_walkers:
        busiest = steal_walkers.most_common(3)
        print("\nbusiest stealing walkers: "
              + ", ".join(f"#{w} ({n} steals)" for w, n in busiest))

    latencies = sorted(r.fields["latency"] for r in completes)
    if latencies:
        print(f"\nwalk latency p50={latencies[len(latencies) // 2]} "
              f"p99={latencies[int(len(latencies) * 0.99)]} "
              f"max={latencies[-1]} cyc over {len(latencies)} walks")


if __name__ == "__main__":
    main()
