"""Query/response vocabulary: validation, keys, ranking, status order."""

import pytest

from repro.serve.queries import (
    DEFAULT_CANDIDATES,
    OBJECTIVES,
    STATUS_ESTIMATE,
    STATUS_EXACT,
    STATUS_ORDER,
    STATUS_REJECTED,
    STATUS_SIMULATED,
    STATUS_TIMEOUT,
    PlacementQuery,
    QueryResponse,
    rank_candidates,
    worst_status,
)


def q(**overrides):
    kwargs = dict(kind="metrics", workloads=("GUPS",))
    kwargs.update(overrides)
    return PlacementQuery(**kwargs)


class TestValidation:
    def test_minimal_metrics_query(self):
        query = q()
        assert query.policies() == ("baseline",)

    def test_best_policy_uses_candidates(self):
        query = q(kind="best_policy", candidates=("dws", "baseline", "dws"))
        assert query.policies() == ("dws", "baseline")  # deduped, ordered

    @pytest.mark.parametrize("bad", [
        dict(kind="nope"),
        dict(workloads=()),
        dict(workloads=("NOPE",)),
        dict(policy="nope"),
        dict(kind="best_policy", candidates=("nope",)),
        dict(objective="nope"),
        dict(deadline_s=-1.0),
    ])
    def test_rejects_bad_fields(self, bad):
        with pytest.raises(ValueError):
            q(**bad)

    def test_from_dict_roundtrip(self):
        query = q(kind="best_policy", workloads=("GUPS", "SRAD"),
                  l2_tlb_entries=512, deadline_s=5.0)
        assert PlacementQuery.from_dict(query.to_dict()) == query

    @pytest.mark.parametrize("body", [
        "not a dict", {"kind": "metrics"}, {"kind": "metrics",
                                            "workloads": "GUPS"},
        {"kind": "metrics", "workloads": ["GUPS"], "bogus_extra": 1,
         "deadline_s": "soon"},
    ])
    def test_from_dict_rejects_garbage(self, body):
        with pytest.raises((ValueError, TypeError)):
            PlacementQuery.from_dict(body)


class TestKey:
    def test_stable_and_deadline_free(self):
        # The deadline is delivery QoS, not content: two clients asking
        # the same question with different patience must coalesce.
        assert q(deadline_s=1.0).key() == q(deadline_s=60.0).key()

    def test_content_changes_key(self):
        base = q().key()
        assert q(workloads=("SRAD",)).key() != base
        assert q(policy="dws").key() != base
        assert q(l2_tlb_entries=512).key() != base
        assert q(walker_count=8).key() != base


class TestStatusOrder:
    def test_worst_status_takes_most_degraded(self):
        assert worst_status([STATUS_EXACT, STATUS_SIMULATED]) \
            == STATUS_SIMULATED
        assert worst_status([STATUS_EXACT, STATUS_TIMEOUT,
                             STATUS_ESTIMATE]) == STATUS_TIMEOUT
        assert worst_status([]) == STATUS_REJECTED

    def test_response_requires_known_status(self):
        with pytest.raises(ValueError):
            QueryResponse(status="nope", estimate=False)
        for status in STATUS_ORDER:
            QueryResponse(status=status, estimate=False)

    def test_response_roundtrip(self):
        response = QueryResponse(status=STATUS_ESTIMATE, estimate=True,
                                 payload={"total_ipc": 1.5},
                                 query_key="abc", wall_ms=2.5, detail="d")
        assert QueryResponse.from_dict(response.to_dict()) == response


class TestRanking:
    def test_maximizes_total_ipc(self):
        table = {"baseline": {"total_ipc": 1.0},
                 "dws": {"total_ipc": 2.0}}
        assert rank_candidates(table, "total_ipc") == "dws"

    def test_minimizes_walk_latency(self):
        table = {"baseline": {"walk_latency_worst": 900.0},
                 "dws": {"walk_latency_worst": 300.0}}
        assert rank_candidates(table, "walk_latency") == "dws"

    def test_skips_missing_payloads_and_breaks_ties_first(self):
        table = {"static": None,
                 "baseline": {"total_ipc": 2.0},
                 "dws": {"total_ipc": 2.0}}
        assert rank_candidates(table, "total_ipc") == "baseline"
        assert rank_candidates({"static": None}, "total_ipc") is None

    def test_default_candidates_are_known_objectives_exist(self):
        assert "baseline" in DEFAULT_CANDIDATES
        assert set(OBJECTIVES) == {"total_ipc", "walk_latency"}
