"""ReproServer behaviour: tiers, deadlines, health, HTTP front-end."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve.client import ServeClient, ServeUnavailable
from repro.serve.health import health_snapshot, ready_snapshot
from repro.serve.queries import (
    STATUS_EXACT,
    STATUS_REJECTED,
    STATUS_SIMULATED,
    STATUS_TIMEOUT,
    PlacementQuery,
)
from repro.serve.server import ServeHTTPServer

from .conftest import DEADLINE, make_server


def wait_until(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def metrics_query(names=("GUPS",), **overrides):
    kwargs = dict(kind="metrics", workloads=tuple(names),
                  deadline_s=DEADLINE)
    kwargs.update(overrides)
    return PlacementQuery(**kwargs)


class TestTiers:
    def test_miss_simulates_then_hits_exact(self, server):
        first = server.query(metrics_query())
        assert first.status == STATUS_SIMULATED
        assert not first.estimate
        assert first.payload["total_ipc"] > 0
        second = server.query(metrics_query())
        assert second.status == STATUS_EXACT
        # Byte-identical payloads: the exact tier replays the cached
        # simulation, not a new one.
        assert json.dumps(second.payload, sort_keys=True) \
            == json.dumps(first.payload, sort_keys=True)
        tiers = server.tier_counters()
        assert tiers[STATUS_SIMULATED] == 1 and tiers[STATUS_EXACT] == 1

    def test_zero_deadline_times_out_then_background_completes(self, server):
        response = server.query(metrics_query(deadline_s=0.0))
        assert response.status == STATUS_TIMEOUT
        assert response.estimate
        assert "background" in response.detail
        # The simulation keeps running and lands in the cache.
        assert wait_until(lambda: server.queue.depth() == 0
                          and server.queue.inflight() == 0)
        final = server.query(metrics_query())
        assert final.status == STATUS_EXACT

    def test_best_policy_ranks_candidates(self, server):
        response = server.query(PlacementQuery(
            kind="best_policy", workloads=("GUPS", "SRAD"),
            candidates=("baseline", "dws"), deadline_s=DEADLINE))
        assert response.status == STATUS_SIMULATED
        payload = response.payload
        assert payload["best_policy"] in ("baseline", "dws")
        assert set(payload["candidates"]) == {"baseline", "dws"}
        ipcs = {p: c["metrics"]["total_ipc"]
                for p, c in payload["candidates"].items()}
        assert payload["best_policy"] == max(ipcs, key=ipcs.get)

    def test_rejected_before_start_and_while_draining(self, tmp_path):
        srv = make_server(tmp_path / "c")
        response = srv.query(metrics_query())
        assert response.status == STATUS_REJECTED
        srv.start()
        srv.drain(timeout=1.0)
        response = srv.query(metrics_query())
        assert response.status == STATUS_REJECTED
        assert "draining" in response.detail


class TestHealth:
    def test_snapshot_schema_and_ok_status(self, server):
        server.query(metrics_query())
        doc = health_snapshot(server)
        assert doc["status"] == "ok"
        assert doc["ready"] is True
        assert doc["queries"][STATUS_SIMULATED] == 1
        assert doc["queue"]["capacity"] == 8
        assert doc["breaker"]["state"] == "closed"
        assert doc["cache"]["stores"] >= 1
        assert doc["estimator_entries"] >= 1
        assert "retries" in doc["supervision"]
        json.dumps(doc)  # the whole document must be JSON-portable

    def test_draining_flips_ready(self, server):
        assert ready_snapshot(server)["ready"] is True
        server.drain(timeout=1.0)
        snapshot = ready_snapshot(server)
        assert snapshot["ready"] is False and snapshot["draining"] is True
        assert health_snapshot(server)["status"] == "draining"


class TestHTTP:
    @pytest.fixture
    def http(self, server):
        httpd = ServeHTTPServer(("127.0.0.1", 0), server)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        yield f"http://127.0.0.1:{httpd.server_address[1]}"
        httpd.shutdown()
        httpd.server_close()

    def test_query_roundtrip(self, http):
        client = ServeClient(http)
        response = client.query(metrics_query())
        assert response.status == STATUS_SIMULATED
        assert client.query(metrics_query()).status == STATUS_EXACT

    def test_health_and_ready_endpoints(self, http):
        client = ServeClient(http)
        assert client.ready() is True
        assert client.health()["status"] == "ok"

    def test_ready_returns_503_when_draining(self, http, server):
        server.draining = True
        try:
            request = urllib.request.Request(f"{http}/readyz")
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10)
            assert err.value.code == 503
        finally:
            server.draining = False

    def test_malformed_query_is_http_400(self, http):
        client = ServeClient(http)
        with pytest.raises(ServeUnavailable) as err:
            client._request("/query", body={"kind": "metrics",
                                            "workloads": ["NOPE"]})
        assert "400" in str(err.value)

    def test_unknown_path_is_404(self, http):
        client = ServeClient(http)
        with pytest.raises(ServeUnavailable) as err:
            client._request("/nope")
        assert "404" in str(err.value)

    def test_client_unreachable_server(self):
        client = ServeClient("http://127.0.0.1:9", timeout_s=0.5)
        with pytest.raises(ServeUnavailable):
            client.query(metrics_query())
        assert client.ready() is False


class TestCoalescing:
    def test_concurrent_identical_queries_share_one_simulation(self, server):
        results = []

        def ask():
            results.append(server.query(metrics_query(("HS",))))

        threads = [threading.Thread(target=ask) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r.status in (STATUS_SIMULATED, STATUS_EXACT)
                   for r in results)
        # At most one simulation ran: everything else coalesced or hit
        # the cache that simulation populated.
        assert server.cache.stores == 1
