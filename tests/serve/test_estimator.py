"""Estimate tier: index persistence and band-nearest-neighbor blending."""

import json

from repro.serve.estimator import (
    INDEX_FILE,
    ServeIndex,
    band_rank,
    band_signature,
    index_key,
)
from repro.workloads.suite import BENCHMARKS


def metrics(total_ipc=1.0, walk=500.0):
    return {"total_ipc": total_ipc, "walk_latency_worst": walk,
            "tenants": [{"walk_latency_mean": walk}]}


def by_band(rank):
    """Any benchmark with the requested Light/Medium/Heavy rank."""
    for name in BENCHMARKS:
        if band_rank(name) == rank:
            return name
    raise AssertionError(f"no benchmark with band rank {rank}")


class TestBands:
    def test_ranks_cover_the_taxonomy(self):
        ranks = {band_rank(name) for name in BENCHMARKS}
        assert ranks == {0, 1, 2}

    def test_signature_is_order_insensitive(self):
        light, heavy = by_band(0), by_band(2)
        assert band_signature((light, heavy)) \
            == band_signature((heavy, light))


class TestServeIndex:
    def test_empty_index_estimates_nothing(self, tmp_path):
        index = ServeIndex(tmp_path)
        assert index.estimate(("GUPS",), "baseline") is None
        assert len(index) == 0

    def test_record_then_estimate_same_key(self, tmp_path):
        index = ServeIndex(tmp_path)
        index.record(("GUPS",), "baseline", None, None, metrics(2.0))
        estimate = index.estimate(("GUPS",), "baseline")
        assert estimate is not None
        assert estimate["total_ipc"] == 2.0
        key = index_key(("GUPS",), "baseline", None, None)
        assert estimate["basis"][0]["key"] == key
        assert estimate["basis"][0]["distance"] == 0.0

    def test_policy_and_tenant_count_filter(self, tmp_path):
        index = ServeIndex(tmp_path)
        index.record(("GUPS",), "dws", None, None, metrics(2.0))
        index.record(("GUPS", "SRAD"), "baseline", None, None, metrics(3.0))
        assert index.estimate(("GUPS",), "baseline") is None

    def test_band_distance_dominates_neighbor_choice(self, tmp_path):
        light, heavy = by_band(0), by_band(2)
        index = ServeIndex(tmp_path, neighbors=1)
        index.record((light,), "baseline", None, None, metrics(10.0))
        index.record((heavy,), "baseline", None, None, metrics(1.0))
        # A query for another Heavy workload must lean on the Heavy
        # neighbor, not the Light one.
        other_heavy = next(n for n in BENCHMARKS
                           if band_rank(n) == 2 and n != heavy)
        estimate = index.estimate((other_heavy,), "baseline")
        assert estimate["basis"][0]["key"] \
            == index_key((heavy,), "baseline", None, None)
        assert estimate["total_ipc"] == 1.0

    def test_knob_distance_prefers_matching_hardware(self, tmp_path):
        index = ServeIndex(tmp_path, neighbors=1)
        index.record(("GUPS",), "baseline", 512, None, metrics(1.0))
        index.record(("GUPS",), "baseline", 2048, None, metrics(4.0))
        estimate = index.estimate(("GUPS",), "baseline",
                                  l2_tlb_entries=2048)
        assert estimate["total_ipc"] == 4.0

    def test_persistence_roundtrip(self, tmp_path):
        ServeIndex(tmp_path).record(("GUPS",), "baseline", None, None,
                                    metrics(2.5))
        reloaded = ServeIndex(tmp_path)
        assert len(reloaded) == 1
        assert reloaded.estimate(("GUPS",), "baseline")["total_ipc"] == 2.5

    def test_corrupt_index_file_starts_empty(self, tmp_path):
        (tmp_path / INDEX_FILE).write_text("{not json")
        index = ServeIndex(tmp_path)
        assert len(index) == 0
        # And a wrong format version is ignored, not crashed on.
        (tmp_path / INDEX_FILE).write_text(
            json.dumps({"format": 999, "entries": {"x": {}}}))
        assert len(ServeIndex(tmp_path)) == 0

    def test_unknown_benchmark_entries_are_skipped(self, tmp_path):
        index = ServeIndex(tmp_path)
        index.record(("GUPS",), "baseline", None, None, metrics(1.0))
        with index._lock:
            index._entries["bogus|baseline|tlbbase|ptwbase"] = {
                "names": ["NOPE"], "policy": "baseline",
                "l2_tlb_entries": None, "walker_count": None,
                "total_ipc": 9.9, "walk_latency_worst": 0.0,
                "walk_latency_mean": 0.0}
        estimate = index.estimate(("GUPS",), "baseline")
        assert estimate["total_ipc"] == 1.0
