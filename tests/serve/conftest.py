"""Shared helpers for the serve-layer tests: tiny, fast servers."""

import pytest

from repro.harness.supervision import RetryPolicy, SupervisionPolicy
from repro.serve.admission import AdmissionPolicy, BreakerPolicy
from repro.serve.server import ReproServer

#: Tiny workloads answer in tens of milliseconds.
SCALE = 0.02
MAX_EVENTS = 5_000_000

#: Deadline generous enough that a "simulated" tier is deterministic on
#: a loaded CI box, small enough that a wedged test fails fast.
DEADLINE = 120.0

#: Breaker sized for tests: trips after 2 bad outcomes, probes after 2
#: more queries — every transition reachable with a handful of queries.
TEST_BREAKER = BreakerPolicy(window=4, threshold=0.5, min_samples=2,
                             probe_after_queries=2)

#: Retries fail fast (chaos scenarios burn attempts on purpose).
QUICK_SUPERVISION = SupervisionPolicy(
    retry=RetryPolicy(max_attempts=3, base_delay=0.001))


def make_server(root, **overrides) -> ReproServer:
    kwargs = dict(
        admission=AdmissionPolicy(max_queue_depth=8,
                                  default_deadline_s=DEADLINE,
                                  drain_timeout_s=2.0),
        breaker_policy=TEST_BREAKER,
        supervision=QUICK_SUPERVISION,
        workers=1, scale=SCALE, warps_per_sm=2, max_events=MAX_EVENTS)
    kwargs.update(overrides)
    return ReproServer(root, **kwargs)


@pytest.fixture
def server(tmp_path):
    srv = make_server(tmp_path / "cache")
    srv.start()
    yield srv
    srv.drain(timeout=2.0)
