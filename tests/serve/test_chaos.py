"""Deterministic chaos suite for the serve path.

The acceptance bar from the ISSUE: under injected worker crashes, hangs
and cache corruption, (1) no admitted query is ever dropped without a
typed answer, (2) degraded answers are labeled estimates, (3) the
breaker trips to estimate-only and recovers through a probe query, and
(4) once the chaos clears, exact-tier answers are *byte-identical* to a
fault-free server's.
"""

import json

import pytest

from repro.harness import faults
from repro.harness.faults import FaultSpec
from repro.serve.admission import BREAKER_CLOSED, BREAKER_OPEN
from repro.serve.queries import (
    STATUS_ESTIMATE,
    STATUS_EXACT,
    STATUS_ORDER,
    STATUS_REJECTED,
    STATUS_SIMULATED,
    PlacementQuery,
)

from .conftest import DEADLINE, make_server


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear_faults()
    yield
    faults.clear_faults()


def q(names, policy="baseline"):
    return PlacementQuery(kind="metrics", workloads=tuple(names),
                          policy=policy, deadline_s=DEADLINE)


#: The traffic mix both servers answer.  Distinct configurations, so
#: every query is its own job (and its own breaker outcome).
TRAFFIC = [q(("GUPS",)), q(("HS",)), q(("SRAD",)), q(("HS", "MM")),
           q(("GUPS",), policy="dws"), q(("HS",), policy="dws")]


def exact_payloads(server):
    """Re-ask everything; exact-tier payloads as canonical JSON."""
    payloads = {}
    for query in TRAFFIC:
        response = server.query(query)
        if response.status == STATUS_EXACT:
            payloads[query.key()] = json.dumps(response.payload,
                                               sort_keys=True)
    return payloads


class TestChaosSuite:
    def test_crash_storm_trips_breaker_then_recovers_byte_identical(
            self, tmp_path):
        # ---- Reference: a fault-free server over its own cache. ----
        reference = make_server(tmp_path / "reference")
        reference.start()
        for query in TRAFFIC:
            response = reference.query(query)
            assert response.status == STATUS_SIMULATED
        reference_payloads = exact_payloads(reference)
        assert len(reference_payloads) == len(TRAFFIC)
        reference.drain(timeout=2.0)

        # ---- Chaos: every first attempt crashes the (serial) worker.
        faults.install_faults([FaultSpec(kind=faults.KIND_CRASH,
                                         label="*", fail_attempts=1)])
        chaos = make_server(tmp_path / "chaos")
        chaos.start()
        responses = []
        for query in TRAFFIC:
            response = chaos.query(query)
            responses.append(response)
            # Invariant (1): always a typed answer.
            assert response.status in STATUS_ORDER
        # Retries saved the first jobs (simulated), but each retried
        # outcome fed the breaker; it must have tripped to estimate-only.
        assert chaos.breaker.trips >= 1
        assert any(r.status in (STATUS_ESTIMATE, STATUS_REJECTED)
                   for r in responses)
        # Invariant (2): every degraded answer carries the honesty bit.
        for response in responses:
            if response.status not in (STATUS_EXACT, STATUS_SIMULATED):
                assert response.estimate or not response.payload
        assert chaos.supervision_stats.retries >= 1

        # ---- Recovery: clear the faults, advance the probe cadence.
        faults.clear_faults()
        probe_queries = 0
        while chaos.breaker.state != BREAKER_CLOSED and probe_queries < 20:
            chaos.query(TRAFFIC[probe_queries % len(TRAFFIC)])
            probe_queries += 1
        assert chaos.breaker.state == BREAKER_CLOSED
        assert chaos.breaker.recoveries >= 1

        # ---- Invariant (4): post-chaos exact answers are byte-identical
        # to the fault-free server's.
        for query in TRAFFIC:
            chaos.query(query)  # fill any still-missing cache entries
        chaos_payloads = exact_payloads(chaos)
        assert chaos_payloads == reference_payloads
        chaos.drain(timeout=2.0)

    def test_transient_raise_faults_answer_typed(self, tmp_path):
        faults.install_faults([FaultSpec(kind=faults.KIND_RAISE,
                                         label="*", fail_attempts=1)])
        server = make_server(tmp_path / "cache")
        server.start()
        response = server.query(q(("GUPS",)))
        # One retry absorbs the transient; the answer is real.
        assert response.status == STATUS_SIMULATED
        assert server.supervision_stats.retries >= 1
        server.drain(timeout=2.0)

    def test_poison_job_quarantined_answer_typed(self, tmp_path):
        # fail_attempts beyond the retry budget: the job is quarantined
        # and the client gets a typed error, not a hang.
        faults.install_faults([FaultSpec(kind=faults.KIND_RAISE,
                                         label="*", fail_attempts=99)])
        server = make_server(tmp_path / "cache")
        server.start()
        response = server.query(q(("GUPS",)))
        assert response.status in STATUS_ORDER
        assert response.status not in (STATUS_EXACT, STATUS_SIMULATED)
        assert len(server.supervision_stats.quarantined) == 1
        # The quarantine shows up on the health surface.
        from repro.serve.health import health_snapshot
        assert health_snapshot(server)["supervision"]["quarantined"]
        server.drain(timeout=2.0)

    def test_cache_corruption_recomputes_identically(self, tmp_path):
        server = make_server(tmp_path / "cache")
        server.start()
        first = server.query(q(("GUPS",)))
        assert first.status == STATUS_SIMULATED
        baseline = json.dumps(first.payload, sort_keys=True)

        # Corrupt the stored entry; the next query must detect it
        # (checksum), quarantine, recompute, and answer identically.
        from repro.harness.faults import corrupt_cache_entry
        from repro.harness.result_cache import job_key
        key = job_key(server._job_for(q(("GUPS",)), "baseline"))
        assert corrupt_cache_entry(server.cache, key, mode="bitflip")
        again = server.query(q(("GUPS",)))
        assert again.status == STATUS_SIMULATED  # recomputed, not served
        assert json.dumps(again.payload, sort_keys=True) == baseline
        assert server.cache.corrupt >= 1
        # And the third ask is exact again.
        assert server.query(q(("GUPS",))).status == STATUS_EXACT
        server.drain(timeout=2.0)
