"""Serve-layer resource governance: pressure shedding, recovery, and
resume over an evicted cache entry.

The resource watermark extends the degradation ladder: a pressured host
answers from the estimate tier (typed, labeled) instead of admitting
more simulations, recovers to the exact/simulated tiers byte-identically
once pressure clears, and reports the whole episode in ``/healthz``.
"""

import json
import threading
import time

import pytest

from repro.harness import faults
from repro.harness.parallel import run_jobs
from repro.harness.resources import PressurePolicy
from repro.harness.result_cache import ResultCache
from repro.serve.health import STATUS_DEGRADED, STATUS_OK, health_snapshot
from repro.serve.queries import (
    STATUS_ESTIMATE,
    STATUS_EXACT,
    STATUS_REJECTED,
    STATUS_SIMULATED,
    PlacementQuery,
)
from repro.serve.server import ServeManifest

from .conftest import DEADLINE, make_server

#: Pressure sampling unthrottled so clearing a fault is visible at once.
LIVE_PRESSURE = PressurePolicy(min_interval_s=0.0)


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear_faults()
    yield
    faults.clear_faults()


def wait_until(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def query(names=("GUPS",), policy="baseline"):
    return PlacementQuery(kind="metrics", workloads=tuple(names),
                          policy=policy, deadline_s=DEADLINE)


def press(available_mb=0.0, load=0.0):
    faults.install_faults([faults.FaultSpec(
        kind=faults.KIND_HOST_PRESSURE,
        available_mb=available_mb, load=load)])


class TestPressureShedding:
    def test_pressured_host_sheds_to_estimate_tier(self, tmp_path):
        server = make_server(tmp_path / "cache", pressure=LIVE_PRESSURE)
        server.start()
        try:
            warm = server.query(query(("GUPS",)))
            assert warm.status == STATUS_SIMULATED  # estimate basis now exists

            press()
            shed = server.query(query(("HS",)))
            assert shed.status == STATUS_ESTIMATE
            assert shed.estimate
            assert "host pressure" in shed.detail
            assert server.resources_snapshot()["sheds"] >= 1
            # Pressure is a host condition, not backend health: the
            # breaker never saw the shed.
            assert server.breaker.snapshot()["state"] == "closed"
        finally:
            server.drain(timeout=2.0)

    def test_pressured_host_without_basis_rejects_typed(self, tmp_path):
        server = make_server(tmp_path / "cache", pressure=LIVE_PRESSURE)
        server.start()
        try:
            press()
            response = server.query(query(("GUPS",)))
            assert response.status == STATUS_REJECTED
            assert "no estimate basis" in response.detail
        finally:
            server.drain(timeout=2.0)

    def test_exact_tier_still_answers_under_pressure(self, tmp_path):
        # The watermark gates *new simulation work*; cached results are
        # free to serve and must not degrade.
        server = make_server(tmp_path / "cache", pressure=LIVE_PRESSURE)
        server.start()
        try:
            assert server.query(query()).status == STATUS_SIMULATED
            press()
            response = server.query(query())
            assert response.status == STATUS_EXACT
            assert not response.estimate
        finally:
            server.drain(timeout=2.0)

    def test_recovery_is_byte_identical_to_unpressured_run(self, tmp_path):
        # Reference: a server that never saw pressure.
        reference = make_server(tmp_path / "ref", pressure=LIVE_PRESSURE)
        reference.start()
        try:
            reference.query(query(("GUPS",)))
            expected = reference.query(query(("HS",)))
            assert expected.status == STATUS_SIMULATED
        finally:
            reference.drain(timeout=2.0)

        server = make_server(tmp_path / "cache", pressure=LIVE_PRESSURE)
        server.start()
        try:
            server.query(query(("GUPS",)))
            press()
            shed = server.query(query(("HS",)))
            assert shed.status == STATUS_ESTIMATE

            faults.clear_faults()
            recovered = server.query(query(("HS",)))
            assert recovered.status == STATUS_SIMULATED
            assert (json.dumps(recovered.payload, sort_keys=True)
                    == json.dumps(expected.payload, sort_keys=True))
        finally:
            server.drain(timeout=2.0)


class TestHealthzResources:
    def test_resources_block_and_degraded_status(self, tmp_path):
        server = make_server(tmp_path / "cache", pressure=LIVE_PRESSURE)
        server.start()
        try:
            server.query(query())  # warm: one simulated result
            press(available_mb=12.0, load=64.0)
            server.query(query(("HS",)))  # bump the shed counter

            snap = health_snapshot(server)
            assert snap["status"] == STATUS_DEGRADED
            resources = snap["resources"]
            assert resources["pressured"] is True
            assert resources["memory_pressured"] is True
            assert resources["load_pressured"] is True
            assert resources["available_mb"] == 12.0
            assert resources["sheds"] >= 1
            assert set(resources["watermarks"]) == {"min_available_mb",
                                                    "max_load_per_cpu"}

            faults.clear_faults()
            snap = health_snapshot(server)
            assert snap["status"] == STATUS_OK
            assert snap["resources"]["pressured"] is False
        finally:
            server.drain(timeout=2.0)

    def test_healthz_is_json_serializable(self, tmp_path):
        server = make_server(tmp_path / "cache", pressure=LIVE_PRESSURE)
        server.start()
        try:
            press()
            json.dumps(health_snapshot(server), sort_keys=True)
        finally:
            server.drain(timeout=2.0)


class TestEvictedManifestResume:
    def test_resume_reenqueues_job_whose_entry_was_evicted(self, tmp_path):
        """Satellite scenario: drain checkpoints a pending job, its cache
        entry is evicted before restart — resume must re-enqueue it as a
        background simulation, not crash or serve a stale exact answer."""
        root = tmp_path / "cache"
        server = make_server(root)
        server._test_gate.clear()  # hold the job "in flight"
        server.start()

        responses = []
        asker = threading.Thread(
            target=lambda: responses.append(server.query(query())))
        asker.start()
        assert wait_until(lambda: server.queue.inflight() == 1)
        checkpointed = server.drain(timeout=0.5)
        assert checkpointed == 1
        asker.join(timeout=30)
        assert not asker.is_alive()
        server._test_gate.set()

        pending = ServeManifest(root / "serve" / "manifest.json").load()
        assert len(pending) == 1
        key, job = pending[0]

        # Out of band: complete the job into the cache, then evict it
        # through the governed path (quota of zero evicts everything).
        cache = ResultCache(root)
        run_jobs([job], workers=1, cache=cache)
        assert cache.entry_path(key).exists()
        report = cache.gc(max_bytes=0)
        assert report.evicted >= 1
        assert not cache.entry_path(key).exists()

        # Restart: the manifest references an evicted entry, so start()
        # must re-enqueue the simulation rather than trust the manifest.
        resumed = make_server(root)
        resumed.start()
        try:
            assert resumed.resumed_jobs == 1
            assert wait_until(lambda: resumed.cache.get(key) is not None)
            response = resumed.query(query())
            assert response.status == STATUS_EXACT
            assert not response.estimate
            assert wait_until(lambda: ServeManifest(
                root / "serve" / "manifest.json").load() == [])
        finally:
            resumed.drain(timeout=2.0)

    def test_resume_skips_jobs_still_cached(self, tmp_path):
        # Control for the scenario above: when the entry survived, the
        # restart must *not* burn a simulation on it.
        root = tmp_path / "cache"
        server = make_server(root)
        server._test_gate.clear()
        server.start()
        asker = threading.Thread(target=lambda: server.query(query()))
        asker.start()
        assert wait_until(lambda: server.queue.inflight() == 1)
        server.drain(timeout=0.5)
        asker.join(timeout=30)
        server._test_gate.set()

        pending = ServeManifest(root / "serve" / "manifest.json").load()
        (key, job), = pending
        run_jobs([job], workers=1, cache=ResultCache(root))

        resumed = make_server(root)
        resumed.start()
        try:
            assert resumed.resumed_jobs == 0
            assert resumed.query(query()).status == STATUS_EXACT
        finally:
            resumed.drain(timeout=2.0)
