"""Graceful drain: SIGTERM mid-simulation, manifest flush, restart resume.

The satellite requirement spelled out: a server killed while a
simulation is in flight must (1) answer every waiting client with a
typed response, (2) flush the pending job descriptions to the serve
manifest, and (3) let a fresh process resume and finish that work.
"""

import signal
import threading
import time

from repro.serve.queries import (
    STATUS_EXACT,
    STATUS_ORDER,
    STATUS_REJECTED,
    STATUS_SIMULATED,
    PlacementQuery,
)
from repro.serve.server import ServeManifest, install_signal_handlers

from .conftest import DEADLINE, make_server


def wait_until(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def query(names=("GUPS",)):
    return PlacementQuery(kind="metrics", workloads=tuple(names),
                          deadline_s=DEADLINE)


class TestDrainAndResume:
    def test_sigterm_during_inflight_checkpoints_and_resumes(self, tmp_path):
        root = tmp_path / "cache"
        server = make_server(root)
        # Hold the executor between take() and execute: the job is
        # deterministically "in flight" when the signal lands.
        server._test_gate.clear()
        server.start()

        responses = []
        asker = threading.Thread(
            target=lambda: responses.append(server.query(query())))
        asker.start()
        assert wait_until(lambda: server.queue.inflight() == 1)

        restore = install_signal_handlers(server)
        try:
            signal.raise_signal(signal.SIGTERM)
        finally:
            restore()
        assert server.draining

        # (1) The waiting client got a typed answer, not a hang.  Its
        # ticket was still gated, so the drain downgraded it.
        asker.join(timeout=30)
        assert not asker.is_alive()
        assert responses and responses[0].status in STATUS_ORDER
        assert responses[0].status not in (STATUS_EXACT, STATUS_SIMULATED)

        # (2) The manifest holds the in-flight job's full description.
        manifest = ServeManifest(root / "serve" / "manifest.json")
        pending = manifest.load()
        assert len(pending) == 1
        key, job = pending[0]
        assert job.names == ("GUPS",)
        server._test_gate.set()  # release the parked executor thread

        # (3) A fresh process resumes the checkpointed job...
        resumed = make_server(root)
        resumed.start()
        assert resumed.resumed_jobs == 1
        assert wait_until(lambda: resumed.cache.get(key) is not None)
        # ...and the re-asked query answers from the exact tier.
        response = resumed.query(query())
        assert response.status == STATUS_EXACT
        # The manifest is empty again: nothing left to resume.
        assert wait_until(lambda: manifest.load() == [])
        resumed.drain(timeout=2.0)

    def test_drain_checkpoints_pending_queue_too(self, tmp_path):
        root = tmp_path / "cache"
        server = make_server(root)
        server._test_gate.clear()
        server.start()

        askers = []
        for names in (("GUPS",), ("HS",), ("SRAD",)):
            thread = threading.Thread(target=server.query,
                                      args=(query(names),))
            thread.start()
            askers.append(thread)
        # One in flight (gated), the rest pending.
        assert wait_until(lambda: server.queue.inflight() == 1
                          and server.queue.depth() == 2)

        checkpointed = server.drain(timeout=0.5)
        assert checkpointed == 3
        for thread in askers:
            thread.join(timeout=30)
            assert not thread.is_alive()
        server._test_gate.set()

        resumed = make_server(root)
        resumed.start()
        assert resumed.resumed_jobs == 3
        assert wait_until(lambda: resumed.queue.depth() == 0
                          and resumed.queue.inflight() == 0)
        for names in (("GUPS",), ("HS",), ("SRAD",)):
            assert resumed.query(query(names)).status == STATUS_EXACT
        resumed.drain(timeout=2.0)

    def test_drained_server_rejects_new_queries_typed(self, tmp_path):
        server = make_server(tmp_path / "cache")
        server.start()
        server.drain(timeout=1.0)
        response = server.query(query())
        assert response.status == STATUS_REJECTED
        assert "draining" in response.detail

    def test_stale_manifest_never_wedges_start(self, tmp_path):
        root = tmp_path / "cache"
        path = root / "serve" / "manifest.json"
        path.parent.mkdir(parents=True)
        path.write_text("{definitely not json")
        server = make_server(root)
        server.start()  # must not raise
        assert server.resumed_jobs == 0
        # Malformed job entries are skipped, not fatal.
        ServeManifest(path).save([])
        path.write_text(
            '{"format": 1, "pending": {"k": {"label": "x"}}}')
        assert ServeManifest(path).load() == []
        server.drain(timeout=1.0)
