"""Admission queue (coalesce/shed/drain) and circuit breaker unit tests."""

import pytest

from repro.engine.config import GpuConfig
from repro.harness.parallel import Job
from repro.serve.admission import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    AdmissionPolicy,
    AdmissionQueue,
    BreakerPolicy,
    CircuitBreaker,
)


def job(label="j"):
    return Job(label=label, names=("GUPS",),
               config=GpuConfig.baseline(num_sms=2), scale=0.02,
               warps_per_sm=2)


class TestAdmissionQueue:
    def test_fifo_take_and_finish(self):
        queue = AdmissionQueue(max_depth=4)
        t1, _ = queue.submit(job("a"), "k1")
        t2, _ = queue.submit(job("b"), "k2")
        assert queue.depth() == 2
        taken = queue.take(timeout=0, limit=2)
        assert [t.key for t in taken] == ["k1", "k2"]
        assert queue.depth() == 0 and queue.inflight() == 2
        queue.finish(t1)
        queue.finish(t2)
        assert queue.inflight() == 0

    def test_identical_queries_coalesce(self):
        queue = AdmissionQueue(max_depth=4)
        t1, _ = queue.submit(job("a"), "k1")
        t2, _ = queue.submit(job("a"), "k1")
        assert t1 is t2
        assert queue.coalesced == 1
        assert queue.depth() == 1

    def test_full_queue_sheds_oldest_not_newest(self):
        queue = AdmissionQueue(max_depth=2)
        oldest, _ = queue.submit(job("a"), "k1")
        queue.submit(job("b"), "k2")
        newest, shed = queue.submit(job("c"), "k3")
        assert shed is oldest
        assert oldest.downgraded and oldest.event.is_set()
        assert "shed" in oldest.detail
        assert newest is not None and not newest.event.is_set()
        assert queue.shed == 1
        assert [k for k, _ in queue.pending_jobs()] == ["k2", "k3"]

    def test_zero_depth_admits_nothing(self):
        queue = AdmissionQueue(max_depth=0)
        ticket, shed = queue.submit(job("a"), "k1")
        assert ticket is None and shed is None

    def test_drain_downgrades_all_pending(self):
        queue = AdmissionQueue(max_depth=4)
        t1, _ = queue.submit(job("a"), "k1")
        t2, _ = queue.submit(job("b"), "k2")
        drained = queue.drain()
        assert {t.key for t in drained} == {"k1", "k2"}
        assert all(t.downgraded and t.event.is_set() for t in (t1, t2))
        assert queue.depth() == 0

    def test_pending_jobs_includes_unfinished_inflight(self):
        queue = AdmissionQueue(max_depth=4)
        queue.submit(job("a"), "k1")
        (ticket,) = queue.take(timeout=0)
        assert [k for k, _ in queue.pending_jobs()] == ["k1"]
        ticket.resolve(object())
        assert queue.pending_jobs() == []

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_queue_depth=-1)
        with pytest.raises(ValueError):
            AdmissionPolicy(default_deadline_s=-1)


POLICY = BreakerPolicy(window=4, threshold=0.5, min_samples=2,
                       probe_after_queries=2)


class TestCircuitBreaker:
    def test_trips_at_threshold_over_window(self):
        breaker = CircuitBreaker(POLICY)
        breaker.record_outcome(True)
        assert breaker.state == BREAKER_CLOSED  # below min_samples
        breaker.record_outcome(False)
        assert breaker.state == BREAKER_OPEN    # 1/2 failures >= 0.5
        assert breaker.trips == 1

    def test_open_denies_simulation(self):
        breaker = CircuitBreaker(POLICY)
        breaker.record_outcome(False)
        breaker.record_outcome(False)
        allowed, probe = breaker.allow_simulation()
        assert not allowed and not probe

    def test_half_open_after_query_cadence_single_probe(self):
        breaker = CircuitBreaker(POLICY)
        breaker.record_outcome(False)
        breaker.record_outcome(False)
        breaker.note_query()
        assert breaker.state == BREAKER_OPEN
        breaker.note_query()
        assert breaker.state == BREAKER_HALF_OPEN
        allowed, probe = breaker.allow_simulation()
        assert allowed and probe
        # Only one probe is admitted while the verdict is pending.
        allowed2, probe2 = breaker.allow_simulation()
        assert not allowed2 and not probe2

    def test_probe_success_closes_and_counts_recovery(self):
        breaker = CircuitBreaker(POLICY)
        breaker.record_outcome(False)
        breaker.record_outcome(False)
        breaker.note_query()
        breaker.note_query()
        breaker.allow_simulation()
        breaker.record_outcome(True, probe=True)
        assert breaker.state == BREAKER_CLOSED
        assert breaker.recoveries == 1
        assert breaker.failure_rate() == 0.0  # window reset on recovery

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(POLICY)
        breaker.record_outcome(False)
        breaker.record_outcome(False)
        breaker.note_query()
        breaker.note_query()
        breaker.allow_simulation()
        breaker.record_outcome(False, probe=True)
        assert breaker.state == BREAKER_OPEN
        # The cadence restarts: two more queries re-arm the probe.
        breaker.note_query()
        breaker.note_query()
        assert breaker.state == BREAKER_HALF_OPEN

    def test_snapshot_schema(self):
        breaker = CircuitBreaker(POLICY)
        breaker.record_outcome(False)
        snap = breaker.snapshot()
        assert snap["state"] == BREAKER_CLOSED
        assert snap["failure_rate"] == 1.0
        assert snap["window_samples"] == 1
        assert snap["trips"] == 0 and snap["recoveries"] == 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(window=0)
        with pytest.raises(ValueError):
            BreakerPolicy(threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(min_samples=9, window=8)
        with pytest.raises(ValueError):
            BreakerPolicy(probe_after_queries=0)
