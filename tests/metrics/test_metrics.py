"""Tests for the evaluation metrics over synthetic RunResults."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.config import GpuConfig
from repro.metrics import (
    fairness,
    interleaving_of,
    mean_interleaving,
    normalized_walk_latency,
    steal_fraction,
    tlb_share,
    total_ipc,
    walk_latency_of,
    walker_share,
    weighted_ipc,
)
from repro.metrics.ipc import slowdowns
from repro.metrics.latency import queue_latency_of
from repro.tenancy.manager import RunResult, TenantRunStats


def make_result(ipcs, stats=None):
    tenants = {}
    for t, ipc in enumerate(ipcs):
        s = TenantRunStats(t, f"wl{t}")
        s.instructions = int(ipc * 1000)
        s.cycles = 1000
        s.completed_executions = 1
        tenants[t] = s
    return RunResult(config=GpuConfig.baseline(), tenants=tenants,
                     total_cycles=1000, stats=stats or {})


class TestTotalIpc:
    def test_sums_tenant_ipcs(self):
        r = make_result([2.0, 3.0])
        assert total_ipc(r) == pytest.approx(5.0)

    @given(st.lists(st.floats(0.01, 100), min_size=1, max_size=4))
    def test_total_is_sum_of_components(self, ipcs):
        r = make_result(ipcs)
        components = [r.ipc_of(t) for t in r.tenant_ids]
        assert total_ipc(r) == pytest.approx(sum(components))
        assert total_ipc(r) >= max(components)


class TestWeightedIpc:
    def test_no_slowdown_gives_n(self):
        r = make_result([2.0, 3.0])
        assert weighted_ipc(r, {0: 2.0, 1: 3.0}) == pytest.approx(2.0)

    def test_half_speed_gives_half(self):
        r = make_result([1.0, 1.5])
        assert weighted_ipc(r, {0: 2.0, 1: 3.0}) == pytest.approx(1.0)

    def test_zero_standalone_rejected(self):
        r = make_result([1.0])
        with pytest.raises(ValueError):
            weighted_ipc(r, {0: 0.0})

    @given(st.lists(st.tuples(st.floats(0.01, 10), st.floats(0.01, 10)),
                    min_size=1, max_size=4))
    def test_bounded_by_n_when_no_speedup(self, pairs):
        # co-run IPC <= standalone IPC for every tenant
        ipcs = [min(c, s) for c, s in pairs]
        standalone = {t: s for t, (_, s) in enumerate(pairs)}
        r = make_result(ipcs)
        assert weighted_ipc(r, standalone) <= len(pairs) + 1e-9


class TestFairness:
    def test_equal_slowdowns_perfectly_fair(self):
        r = make_result([1.0, 2.0])
        assert fairness(r, {0: 2.0, 1: 4.0}) == pytest.approx(1.0)

    def test_unequal_slowdowns(self):
        r = make_result([1.0, 1.0])  # slowdowns 0.5 and 0.25
        assert fairness(r, {0: 2.0, 1: 4.0}) == pytest.approx(0.5)

    def test_stalled_tenant_gives_zero(self):
        r = make_result([0.0, 2.0])
        assert fairness(r, {0: 1.0, 1: 2.0}) == 0.0

    @given(st.lists(st.tuples(st.floats(0.01, 10), st.floats(0.01, 10)),
                    min_size=2, max_size=4))
    def test_fairness_in_unit_interval(self, pairs):
        r = make_result([c for c, _ in pairs])
        standalone = {t: s for t, (_, s) in enumerate(pairs)}
        f = fairness(r, standalone)
        assert 0.0 <= f <= 1.0 + 1e-9

    def test_slowdowns_helper(self):
        r = make_result([1.0, 3.0])
        s = slowdowns(r, {0: 2.0, 1: 3.0})
        assert s == {0: pytest.approx(0.5), 1: pytest.approx(1.0)}


class TestStatBackedMetrics:
    def make(self):
        stats = {
            "pws.interleave.tenant0.mean": 20.0,
            "pws.interleave.tenant1.mean": 60.0,
            "pws.walk_latency.tenant0.mean": 500.0,
            "pws.queue_latency.tenant0.mean": 350.0,
            "pws.completed.tenant0": 100.0,
            "pws.stolen.tenant0": 25.0,
            "pws.walker_share.tenant0": 0.6,
            "l2tlb.tlb_share.tenant0": 0.7,
        }
        return make_result([1.0, 1.0], stats)

    def test_interleaving(self):
        r = self.make()
        assert interleaving_of(r, 0) == 20.0
        assert interleaving_of(r, 1) == 60.0
        assert mean_interleaving(r) == pytest.approx(40.0)

    def test_walk_latency(self):
        r = self.make()
        assert walk_latency_of(r, 0) == 500.0
        assert queue_latency_of(r, 0) == 350.0
        assert normalized_walk_latency(r, 0, standalone_latency=250.0) == 2.0
        with pytest.raises(ValueError):
            normalized_walk_latency(r, 0, standalone_latency=0.0)

    def test_steal_fraction(self):
        r = self.make()
        assert steal_fraction(r, 0) == pytest.approx(0.25)
        assert steal_fraction(r, 1) == 0.0  # no completions recorded

    def test_shares(self):
        r = self.make()
        assert walker_share(r, 0) == 0.6
        assert tlb_share(r, 0) == 0.7
        assert walker_share(r, 1) == 0.0
