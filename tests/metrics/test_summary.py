"""Tests for the RunSummary aggregation."""

import pytest

from repro.engine.config import GpuConfig
from repro.gpu.warp import WarpOp
from repro.metrics.summary import summarize
from repro.tenancy.manager import MultiTenantManager
from repro.tenancy.tenant import Tenant


class PageTouches:
    def __init__(self, name, pages):
        self.name = name
        self.pages = pages

    def build_streams(self, num_warps, rng):
        return [
            iter([WarpOp(2, [(p + w * 100) << 12]) for p in self.pages])
            for w in range(num_warps)
        ]


@pytest.fixture(scope="module")
def run_result():
    cfg = GpuConfig.baseline(num_sms=4).with_policy("dws")
    manager = MultiTenantManager(
        cfg,
        [Tenant(0, PageTouches("a", range(1, 30))),
         Tenant(1, PageTouches("b", range(1, 6)))],
        warps_per_sm=2,
    )
    return manager.run()


class TestSummarize:
    def test_per_tenant_fields_populated(self, run_result):
        summary = summarize(run_result)
        assert summary.policy == "dws"
        assert summary.total_cycles == run_result.total_cycles
        assert len(summary.tenants) == 2
        a = summary.tenant(0)
        assert a.workload == "a"
        assert a.ipc > 0
        assert a.walks > 0
        assert a.walk_latency > 0
        assert 0 <= a.stolen_fraction <= 1
        assert 0 <= a.tlb_share <= 1

    def test_total_ipc_is_sum(self, run_result):
        summary = summarize(run_result)
        assert summary.total_ipc == pytest.approx(
            sum(t.ipc for t in summary.tenants))

    def test_relative_metrics_need_standalone(self, run_result):
        summary = summarize(run_result)
        assert summary.weighted_ipc is None
        assert summary.fairness is None
        with_sa = summarize(run_result, standalone_ipc={0: 10.0, 1: 10.0})
        assert with_sa.weighted_ipc is not None
        assert 0 <= with_sa.fairness <= 1

    def test_unknown_tenant_raises(self, run_result):
        with pytest.raises(KeyError):
            summarize(run_result).tenant(9)


class TestSeparateSubsystems:
    def test_summary_handles_s_tlb_ptw_naming(self):
        cfg = GpuConfig.baseline(num_sms=4).with_separate_tlb_and_walkers()
        manager = MultiTenantManager(
            cfg,
            [Tenant(0, PageTouches("a", range(1, 10))),
             Tenant(1, PageTouches("b", range(1, 10)))],
            warps_per_sm=2,
        )
        summary = summarize(manager.run())
        for t in summary.tenants:
            assert t.walks > 0  # found the per-tenant subsystem stats
