"""Unit and property tests for the virtual address layout."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.vm.address import VIRTUAL_ADDRESS_BITS, AddressLayout


class TestLayout4K:
    layout = AddressLayout(page_size_bits=12)

    def test_x86_like_geometry(self):
        assert self.layout.page_size == 4096
        assert self.layout.vpn_bits == 36
        assert self.layout.level_widths == (9, 9, 9, 9)

    def test_vpn_and_offset(self):
        vaddr = (0x123456 << 12) | 0xABC
        assert self.layout.vpn(vaddr) == 0x123456
        assert self.layout.page_offset(vaddr) == 0xABC

    def test_level_indices_partition_vpn(self):
        vpn = 0b110000000_101010101_000000001_111111111
        assert self.layout.level_index(vpn, 0) == 0b110000000
        assert self.layout.level_index(vpn, 1) == 0b101010101
        assert self.layout.level_index(vpn, 2) == 0b000000001
        assert self.layout.level_index(vpn, 3) == 0b111111111

    def test_prefix_depths(self):
        vpn = 0x123456789
        assert self.layout.prefix(vpn, 0) == 0
        assert self.layout.prefix(vpn, 4) == vpn
        assert self.layout.prefix(vpn, 1) == vpn >> 27
        assert self.layout.prefix(vpn, 3) == vpn >> 9


class TestLayout64K:
    layout = AddressLayout(page_size_bits=16)

    def test_geometry(self):
        assert self.layout.page_size == 64 * 1024
        assert self.layout.vpn_bits == 32
        assert self.layout.level_widths == (5, 9, 9, 9)
        assert sum(self.layout.level_widths) == 32


class TestLayout2M:
    layout = AddressLayout(page_size_bits=21)

    def test_depth_clamps_to_three_levels(self):
        """2 MB pages walk a 3-level radix, as on real hardware."""
        assert self.layout.depth == 3
        assert self.layout.level_widths == (9, 9, 9)
        assert sum(self.layout.level_widths) == self.layout.vpn_bits

    def test_dissection_roundtrip(self):
        vaddr = (0xABCDE << 21) | 0x12345
        assert self.layout.vpn(vaddr) == 0xABCDE
        assert self.layout.compose(0xABCDE, 0x12345) == vaddr


class TestValidation:
    def test_rejects_absurd_page_sizes(self):
        with pytest.raises(ValueError):
            AddressLayout(page_size_bits=8)
        with pytest.raises(ValueError):
            AddressLayout(page_size_bits=30)

    def test_prefix_depth_range(self):
        layout = AddressLayout(page_size_bits=12)
        with pytest.raises(ValueError):
            layout.prefix(0, 5)


@given(st.integers(0, (1 << 48) - 1), st.sampled_from([12, 16]))
def test_compose_inverts_dissect(vaddr, bits):
    layout = AddressLayout(page_size_bits=bits)
    vpn = layout.vpn(vaddr)
    off = layout.page_offset(vaddr)
    assert layout.compose(vpn, off) == vaddr


@given(st.integers(0, (1 << 36) - 1))
def test_level_indices_reassemble_vpn(vpn):
    layout = AddressLayout(page_size_bits=12)
    rebuilt = 0
    for level in range(4):
        rebuilt = (rebuilt << 9) | layout.level_index(vpn, level)
    assert rebuilt == vpn


@given(st.integers(0, (1 << 36) - 1), st.integers(0, (1 << 36) - 1))
def test_shared_prefix_iff_same_walk_path(vpn_a, vpn_b):
    """Two VPNs share a depth-k prefix iff their first k level indexes match."""
    layout = AddressLayout(page_size_bits=12)
    for depth in range(1, 4):
        same_prefix = layout.prefix(vpn_a, depth) == layout.prefix(vpn_b, depth)
        same_path = all(
            layout.level_index(vpn_a, lv) == layout.level_index(vpn_b, lv)
            for lv in range(depth)
        )
        assert same_prefix == same_path
