"""Unit and property tests for the TLB."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.config import TlbConfig
from repro.engine.simulator import Simulator
from repro.vm.tlb import Tlb


def make_tlb(entries=8, assoc=2):
    sim = Simulator()
    tlb = Tlb(sim, TlbConfig(entries=entries, associativity=assoc,
                             hit_latency=1, mshr_entries=4), name="tlb")
    return sim, tlb


class TestLookupInsert:
    def test_miss_then_hit(self):
        sim, tlb = make_tlb()
        assert not tlb.lookup(0, 0x10)
        tlb.insert(0, 0x10, frame=5)
        assert tlb.lookup(0, 0x10)

    def test_tenants_do_not_alias(self):
        sim, tlb = make_tlb()
        tlb.insert(0, 0x10, frame=5)
        assert not tlb.lookup(1, 0x10)

    def test_hit_miss_counters(self):
        sim, tlb = make_tlb()
        tlb.lookup(0, 1)
        tlb.insert(0, 1, 0)
        tlb.lookup(0, 1)
        assert sim.stats.counter("tlb.hits").value == 1
        assert sim.stats.counter("tlb.misses").value == 1


class TestLruEviction:
    def test_lru_within_set(self):
        # 4 sets x 2 ways; vpns 0, 4, 8 all map to set 0
        sim, tlb = make_tlb(entries=8, assoc=2)
        tlb.insert(0, 0, 0)
        tlb.insert(0, 4, 0)
        tlb.lookup(0, 0)       # refresh 0 -> 4 becomes LRU
        tlb.insert(0, 8, 0)    # evicts 4
        assert tlb.lookup(0, 0)
        assert not tlb.lookup(0, 4)
        assert tlb.lookup(0, 8)
        assert sim.stats.counter("tlb.evictions").value == 1

    def test_reinsert_refreshes_not_duplicates(self):
        sim, tlb = make_tlb(entries=8, assoc=2)
        tlb.insert(0, 0, 0)
        tlb.insert(0, 0, 0)
        assert tlb.resident(0) == 1


class TestResidency:
    def test_per_tenant_counts(self):
        sim, tlb = make_tlb(entries=8, assoc=2)
        tlb.insert(0, 0, 0)
        tlb.insert(0, 1, 0)
        tlb.insert(1, 2, 0)
        assert tlb.resident(0) == 2
        assert tlb.resident(1) == 1
        assert tlb.resident_total() == 3

    def test_eviction_decrements_victim_tenant(self):
        sim, tlb = make_tlb(entries=8, assoc=2)
        tlb.insert(0, 0, 0)
        tlb.insert(1, 4, 0)
        tlb.insert(1, 8, 0)  # evicts tenant 0's entry (LRU in set 0)
        assert tlb.resident(0) == 0
        assert tlb.resident(1) == 2

    def test_invalidate_tenant(self):
        sim, tlb = make_tlb(entries=8, assoc=2)
        for v in range(4):
            tlb.insert(0, v, 0)
        tlb.insert(1, 9, 0)
        assert tlb.invalidate_tenant(0) == 4
        assert tlb.resident(0) == 0
        assert tlb.resident(1) == 1

    def test_mean_share_tracks_time_weighted_occupancy(self):
        sim, tlb = make_tlb(entries=8, assoc=2)
        tlb.insert(0, 0, 0)   # at t=0: share 1/8
        sim.at(100, lambda: tlb.insert(0, 1, 0))  # at t=100: share 2/8
        sim.drain()
        sim.at(200, lambda: None)
        sim.drain()
        share = tlb.mean_share(0)
        # 100 cycles at 1/8 + 100 cycles at 2/8 = 3/16 mean
        assert share == pytest.approx(3 / 16)

    def test_mean_share_unknown_tenant_is_zero(self):
        sim, tlb = make_tlb()
        assert tlb.mean_share(7) == 0.0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 30)),
                min_size=1, max_size=200))
def test_property_capacity_and_residency_consistency(ops):
    sim, tlb = make_tlb(entries=8, assoc=2)
    for tenant, vpn in ops:
        if not tlb.lookup(tenant, vpn):
            tlb.insert(tenant, vpn, 0)
        # capacity invariants hold at every step
        assert tlb.resident_total() <= 8
        for s in tlb._sets:
            assert len(s) <= 2
    assert tlb.resident(0) + tlb.resident(1) == tlb.resident_total()
