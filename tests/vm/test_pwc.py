"""Tests for the page walk cache (longest-prefix matching)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.simulator import Simulator
from repro.vm.address import AddressLayout
from repro.vm.pwc import PageWalkCache


def make_pwc(entries=16):
    sim = Simulator()
    layout = AddressLayout(page_size_bits=12)
    return sim, layout, PageWalkCache(sim, layout, entries)


class TestProbeFill:
    def test_cold_probe_misses(self):
        sim, layout, pwc = make_pwc()
        assert pwc.probe(0, 0x123) == 0

    def test_fill_then_full_depth_hit(self):
        sim, layout, pwc = make_pwc()
        pwc.fill(0, 0x123)
        assert pwc.probe(0, 0x123) == pwc.max_depth  # skip 3 of 4 levels

    def test_partial_prefix_hit(self):
        sim, layout, pwc = make_pwc()
        vpn_a = 0b000000001_000000010_000000011_000000100
        # shares top 2 levels with vpn_a, diverges at level 2
        vpn_b = 0b000000001_000000010_111111111_000000100
        pwc.fill(0, vpn_a)
        assert pwc.probe(0, vpn_b) == 2

    def test_prefix_never_skips_leaf(self):
        sim, layout, pwc = make_pwc()
        pwc.fill(0, 0x42)
        assert pwc.probe(0, 0x42) <= layout.depth - 1

    def test_tenant_isolation(self):
        sim, layout, pwc = make_pwc()
        pwc.fill(0, 0x123)
        assert pwc.probe(1, 0x123) == 0


class TestLru:
    def test_capacity_bounded(self):
        sim, layout, pwc = make_pwc(entries=4)
        for vpn in range(0, 10 << 27, 1 << 27):  # distinct top-level indexes
            pwc.fill(0, vpn)
        assert len(pwc) <= 4

    def test_eviction_is_lru(self):
        sim, layout, pwc = make_pwc(entries=3)
        # each fill inserts 3 prefixes; use distinct subtrees
        pwc.fill(0, 0)
        assert pwc.probe(0, 0) == 3  # refresh all three entries of vpn 0
        pwc.fill(0, 1 << 27)  # 3 new entries evict... everything older
        assert pwc.probe(0, 1 << 27) == 3
        assert pwc.probe(0, 0) == 0


class TestStats:
    def test_hit_miss_and_skip_counters(self):
        sim, layout, pwc = make_pwc()
        pwc.probe(0, 5)          # miss
        pwc.fill(0, 5)
        pwc.probe(0, 5)          # hit, skips 3
        assert sim.stats.counter("pwc.misses").value == 1
        assert sim.stats.counter("pwc.hits").value == 1
        assert sim.stats.counter("pwc.levels_skipped").value == 3

    def test_resident_per_tenant(self):
        sim, layout, pwc = make_pwc()
        pwc.fill(0, 5)
        pwc.fill(1, 5)
        assert pwc.resident(0) == 3
        assert pwc.resident(1) == 3


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, (1 << 36) - 1), min_size=1, max_size=30))
def test_property_probe_after_fill_returns_max_depth_with_capacity(vpns):
    """With ample capacity, the most recent fill always fully hits."""
    sim, layout, pwc = make_pwc(entries=1024)
    for vpn in vpns:
        pwc.fill(0, vpn)
        assert pwc.probe(0, vpn) == layout.depth - 1


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, (1 << 36) - 1), min_size=1, max_size=60),
       st.integers(1, 16))
def test_property_capacity_never_exceeded(vpns, entries):
    sim, layout, pwc = make_pwc(entries=entries)
    for vpn in vpns:
        pwc.fill(0, vpn)
        assert len(pwc) <= entries
