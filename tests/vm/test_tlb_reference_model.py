"""Reference-model property test: the TLB against a pure-Python oracle.

Hypothesis drives random lookup/insert/invalidate sequences into both
the real set-associative TLB and a deliberately naive reference
implementation; every observable (hit/miss outcome, residency counts)
must agree at every step.  This catches subtle LRU or residency
accounting bugs that example-based tests miss.
"""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.config import TlbConfig
from repro.engine.simulator import Simulator
from repro.vm.tlb import Tlb

NUM_SETS = 4
ASSOC = 2


class ReferenceTlb:
    """The obvious, slow model: one OrderedDict per set."""

    def __init__(self):
        self.sets = [OrderedDict() for _ in range(NUM_SETS)]

    def _set(self, vpn):
        return self.sets[vpn % NUM_SETS]

    def lookup(self, tenant, vpn):
        s = self._set(vpn)
        key = (tenant, vpn)
        if key in s:
            s.move_to_end(key)
            return True
        return False

    def insert(self, tenant, vpn):
        s = self._set(vpn)
        key = (tenant, vpn)
        if key in s:
            s.move_to_end(key)
            return
        if len(s) >= ASSOC:
            s.popitem(last=False)
        s[key] = True

    def invalidate(self, tenant):
        dropped = 0
        for s in self.sets:
            for key in [k for k in s if k[0] == tenant]:
                del s[key]
                dropped += 1
        return dropped

    def resident(self, tenant):
        return sum(1 for s in self.sets for k in s if k[0] == tenant)


# operations: (kind, tenant, vpn)
#   0 lookup-then-insert-on-miss (the datapath's usage pattern)
#   1 pure lookup
#   2 invalidate tenant
ops = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 24)),
    min_size=1, max_size=300,
)


@settings(max_examples=60, deadline=None)
@given(script=ops)
def test_tlb_matches_reference_model(script):
    sim = Simulator()
    tlb = Tlb(sim, TlbConfig(entries=NUM_SETS * ASSOC, associativity=ASSOC,
                             hit_latency=1, mshr_entries=4), name="t")
    ref = ReferenceTlb()
    for kind, tenant, vpn in script:
        if kind == 0:
            real_hit = tlb.lookup(tenant, vpn)
            ref_hit = ref.lookup(tenant, vpn)
            assert real_hit == ref_hit
            if not real_hit:
                tlb.insert(tenant, vpn, frame=0)
                ref.insert(tenant, vpn)
        elif kind == 1:
            assert tlb.lookup(tenant, vpn) == ref.lookup(tenant, vpn)
        else:
            assert tlb.invalidate_tenant(tenant) == ref.invalidate(tenant)
        for t in (0, 1, 2):
            assert tlb.resident(t) == ref.resident(t)
