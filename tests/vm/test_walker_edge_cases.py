"""Edge-case tests for the walker FSM and subsystem plumbing."""

import pytest

from repro.engine.simulator import Simulator
from repro.mem.frames import FrameAllocator
from repro.vm.address import AddressLayout
from repro.vm.page_table import PageTable
from repro.vm.subsystem import PageWalkSubsystem
from repro.vm.walk import WalkRequest, WalkSchedulingPolicy


class OneShotPolicy(WalkSchedulingPolicy):
    """Hands out queued requests FIFO; capacity 4."""

    def __init__(self):
        self.queue = []

    def attach(self, subsystem):
        self.num_walkers = len(subsystem.walkers)

    def on_arrival(self, request):
        if len(self.queue) >= 4:
            return False
        self.queue.append(request)
        return True

    def select(self, walker_id):
        return self.queue.pop(0) if self.queue else None

    def on_complete(self, walker_id, request):
        pass

    def pending_for(self, tenant_id):
        return sum(1 for r in self.queue if r.tenant_id == tenant_id)

    def pending_total(self):
        return len(self.queue)

    def on_tenant_set_changed(self, tenant_ids):
        pass


class SlowMemory:
    def __init__(self, sim, latency=50):
        self.sim = sim
        self.latency = latency

    def walker_access(self, paddr, on_done, tenant_id=0):
        self.sim.after(self.latency, on_done)


def make(num_walkers=2, dispatch_latency=0, page_bits=12):
    sim = Simulator()
    layout = AddressLayout(page_size_bits=page_bits)
    pws = PageWalkSubsystem(
        sim, SlowMemory(sim), OneShotPolicy(), num_walkers=num_walkers,
        pwc_entries=32, pwc_latency=1, dispatch_latency=dispatch_latency,
        layout=layout,
    )
    frames = FrameAllocator(total_frames=1 << 18,
                            frame_bytes=layout.page_size)
    pt = PageTable(0, layout, frames)
    pws.register_tenant(0, pt)
    return sim, pws, pt


class TestWalkerFsm:
    def test_busy_walker_rejects_second_start(self):
        sim, pws, pt = make()
        pt.ensure_mapped(1)
        pt.ensure_mapped(1 << 27)
        pws.request_walk(0, 1, lambda r: None)
        sim.step()  # dispatch happens
        walker = pws.walkers[0]
        assert walker.busy
        with pytest.raises(RuntimeError):
            walker.start(WalkRequest(0, 1 << 27, sim.now))
        sim.drain()

    def test_dispatch_latency_reserves_walker(self):
        """During non-zero dispatch latency the walker must not be
        double-assigned by a second dispatch round."""
        sim, pws, pt = make(num_walkers=1, dispatch_latency=5)
        for vpn in (1, 1 << 27):
            pt.ensure_mapped(vpn)
        done = []
        pws.request_walk(0, 1, lambda r: done.append(r.vpn))
        pws.request_walk(0, 1 << 27, lambda r: done.append(r.vpn))
        sim.drain()
        assert sorted(done) == [1, 1 << 27]

    def test_pwc_latency_delays_first_access(self):
        sim, pws, pt = make(dispatch_latency=0)
        pt.ensure_mapped(7)
        finished = []
        pws.request_walk(0, 7, lambda r: finished.append(sim.now))
        sim.drain()
        # pwc_latency(1) + 4 accesses x 50 cycles
        assert finished[0] == 1 + 4 * 50

    def test_walk_memory_access_count_in_stats(self):
        sim, pws, pt = make()
        pt.ensure_mapped(9)
        pws.request_walk(0, 9, lambda r: None)
        sim.drain()
        acc = sim.stats.accumulator("pws.mem_accesses")
        assert acc.count == 1 and acc.total == 4


class TestQueueDepthHistogram:
    def test_depth_distribution_recorded(self):
        sim, pws, pt = make(num_walkers=1)
        for vpn in range(1, 5):
            pt.ensure_mapped(vpn << 18)  # distinct subtrees
        for vpn in range(1, 5):
            pws.request_walk(0, vpn << 18, lambda r: None)
        sim.drain()
        hist = sim.stats.get("pws.queue_depth")
        assert hist is not None and hist.count == 4
        # first arrival saw an empty queue
        assert hist.fraction_at_or_below(0) > 0


class TestLargePages:
    @pytest.mark.parametrize("page_bits,depth", [(16, 4), (21, 3)])
    def test_walks_work_at_large_page_sizes(self, page_bits, depth):
        # 2 MB pages shorten the radix walk to three levels
        sim, pws, pt = make(page_bits=page_bits)
        pt.ensure_mapped(3)
        done = []
        pws.request_walk(0, 3, lambda r: done.append(r))
        sim.drain()
        assert done and done[0].memory_accesses == depth

    def test_pwc_prefixes_respect_large_page_layout(self):
        sim, pws, pt = make(page_bits=21)
        pt.ensure_mapped(3)
        pt.ensure_mapped(4)  # same leaf subtree at 2MB layout
        results = []
        pws.request_walk(0, 3, lambda r: results.append(r))
        sim.drain()
        pws.request_walk(0, 4, lambda r: results.append(r))
        sim.drain()
        assert results[1].memory_accesses < results[0].memory_accesses
