"""Tests for the subsystem's overflow buffer under partitioned policies.

The overflow buffer holds arrivals the policy refused for lack of queue
space.  Under partitioned queues it must not let one tenant's full
queues block another tenant's held walks (the scan-all replay), while
preserving FIFO order within a tenant.
"""

from repro.core.dws import DwsPolicy
from repro.engine.simulator import Simulator
from repro.mem.frames import FrameAllocator
from repro.vm.address import AddressLayout
from repro.vm.page_table import PageTable
from repro.vm.subsystem import PageWalkSubsystem


class SlowMemory:
    def __init__(self, sim, latency=200):
        self.sim = sim
        self.latency = latency

    def walker_access(self, paddr, on_done, tenant_id=0):
        self.sim.after(self.latency, on_done)


def make(num_walkers=2, queue_entries=2):
    sim = Simulator()
    layout = AddressLayout(page_size_bits=12)
    policy = DwsPolicy(num_walkers, queue_entries, [0, 1])
    pws = PageWalkSubsystem(
        sim, SlowMemory(sim), policy, num_walkers=num_walkers,
        pwc_entries=8, pwc_latency=0, dispatch_latency=0, layout=layout,
    )
    frames = FrameAllocator(total_frames=1 << 18, frame_bytes=4096)
    for t in (0, 1):
        pt = PageTable(t, layout, frames)
        pws.register_tenant(t, pt)
    return sim, pws


def submit(pws, tenant, vpn, done):
    pws.page_tables[tenant].ensure_mapped(vpn)
    pws.request_walk(tenant, vpn,
                     lambda r: done.append((r.tenant_id, r.vpn)))


def test_overflow_replays_across_tenants_without_hol_blocking():
    sim, pws = make(num_walkers=2, queue_entries=2)
    done = []
    # tenant 0 owns walker 0 (queue cap 1): 1 in service + 1 queued,
    # further tenant-0 arrivals overflow
    for i in range(5):
        submit(pws, 0, (i + 1) << 18, done)
    # tenant 1's arrival comes AFTER tenant 0's overflow entries
    submit(pws, 1, 7 << 18, done)
    assert pws.overflowed_walks >= 2
    sim.drain()
    # everything completed despite the overflow mixture
    assert len(done) == 6
    assert (1, 7 << 18) in done


def test_overflow_preserves_fifo_within_a_tenant():
    sim, pws = make(num_walkers=2, queue_entries=2)
    done = []
    for i in range(6):
        submit(pws, 0, (i + 1) << 18, done)
    sim.drain()
    vpns = [vpn for t, vpn in done if t == 0]
    assert vpns == sorted(vpns, key=lambda v: vpns.index(v))  # stable
    # service order follows arrival order
    assert vpns == [(i + 1) << 18 for i in range(6)]


def test_overflow_counter_and_drain():
    sim, pws = make(num_walkers=2, queue_entries=2)
    done = []
    for i in range(4):
        submit(pws, 0, (i + 1) << 18, done)
    assert sim.stats.counter("pws.overflow").value >= 1
    sim.drain()
    assert pws.overflowed_walks == 0
