"""Tests for the radix page table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.frames import FrameAllocator
from repro.vm.address import PTE_BYTES, AddressLayout
from repro.vm.page_table import PageTable


def make_pt(page_bits=12, tenant=0):
    layout = AddressLayout(page_size_bits=page_bits)
    frames = FrameAllocator(total_frames=1 << 20, frame_bytes=layout.page_size)
    return PageTable(tenant, layout, frames), layout, frames


class TestMapping:
    def test_lazy_map_allocates_data_frame(self):
        pt, layout, frames = make_pt()
        assert pt.translate(0x42) is None
        frame = pt.ensure_mapped(0x42)
        assert pt.translate(0x42) == frame
        assert pt.mapped_pages == 1

    def test_remap_is_idempotent(self):
        pt, _, _ = make_pt()
        f1 = pt.ensure_mapped(0x42)
        f2 = pt.ensure_mapped(0x42)
        assert f1 == f2
        assert pt.mapped_pages == 1

    def test_distinct_vpns_get_distinct_frames(self):
        pt, _, _ = make_pt()
        frames = {pt.ensure_mapped(v) for v in range(100)}
        assert len(frames) == 100

    def test_node_sharing_for_nearby_pages(self):
        """Consecutive VPNs share interior nodes (one leaf node per 512)."""
        pt, _, _ = make_pt()
        for v in range(512):
            pt.ensure_mapped(v)
        # root + one node per interior level (3) shared by all 512 pages
        assert pt.node_count == 4

    def test_far_apart_pages_need_new_subtrees(self):
        pt, layout, _ = make_pt()
        pt.ensure_mapped(0)
        before = pt.node_count
        pt.ensure_mapped(1 << 27)  # different top-level index
        assert pt.node_count == before + 3  # 3 fresh interior nodes


class TestWalkAddresses:
    def test_walk_has_one_address_per_level(self):
        pt, layout, _ = make_pt()
        pt.ensure_mapped(0x1234)
        addrs = pt.walk_addresses(0x1234)
        assert len(addrs) == layout.depth

    def test_unmapped_vpn_raises(self):
        pt, _, _ = make_pt()
        with pytest.raises(KeyError):
            pt.walk_addresses(0x99)

    def test_walk_addresses_are_deterministic(self):
        pt, _, _ = make_pt()
        pt.ensure_mapped(0x77)
        assert pt.walk_addresses(0x77) == pt.walk_addresses(0x77)

    def test_root_access_shared_by_all_walks_with_same_top_index(self):
        pt, layout, _ = make_pt()
        pt.ensure_mapped(0)
        pt.ensure_mapped(1)  # same leaf node, adjacent PTE
        a0 = pt.walk_addresses(0)
        a1 = pt.walk_addresses(1)
        assert a0[:3] == a1[:3]  # identical down to the leaf node
        assert a1[3] == a0[3] + PTE_BYTES

    def test_walks_of_different_tenants_never_alias(self):
        layout = AddressLayout(page_size_bits=12)
        frames = FrameAllocator(total_frames=1 << 20, frame_bytes=4096)
        pt0 = PageTable(0, layout, frames)
        pt1 = PageTable(1, layout, frames)
        pt0.ensure_mapped(0x5)
        pt1.ensure_mapped(0x5)
        assert set(pt0.walk_addresses(0x5)).isdisjoint(pt1.walk_addresses(0x5))


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, (1 << 36) - 1), min_size=1, max_size=50))
def test_property_every_mapped_page_walkable(vpns):
    pt, layout, _ = make_pt()
    for vpn in vpns:
        pt.ensure_mapped(vpn)
    for vpn in vpns:
        addrs = pt.walk_addresses(vpn)
        assert len(addrs) == 4
        assert all(a >= 0 for a in addrs)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 1 << 20), min_size=2, max_size=40, unique=True))
def test_property_translations_are_injective(vpns):
    pt, _, _ = make_pt()
    frames = [pt.ensure_mapped(v) for v in vpns]
    assert len(set(frames)) == len(frames)


def test_64k_page_table_walks():
    pt, layout, _ = make_pt(page_bits=16)
    pt.ensure_mapped(0xABC)
    assert len(pt.walk_addresses(0xABC)) == 4
