"""Integration tests for the page walk subsystem with a simple FIFO policy.

The real scheduling policies live in repro.core and have their own tests;
here a minimal shared-FIFO policy exercises the mechanism: merging,
back-pressure, walker concurrency, PWC integration and metric hooks.
"""

from collections import deque

import pytest

from repro.engine.simulator import Simulator
from repro.mem.frames import FrameAllocator
from repro.vm.address import AddressLayout
from repro.vm.page_table import PageTable
from repro.vm.subsystem import PageWalkSubsystem
from repro.vm.walk import WalkSchedulingPolicy


class FifoPolicy(WalkSchedulingPolicy):
    """Single shared FIFO with bounded capacity (test stand-in)."""

    def __init__(self, capacity=8):
        self.capacity = capacity
        self.queue = deque()

    def attach(self, subsystem):
        self.num_walkers = len(subsystem.walkers)

    def on_arrival(self, request):
        if len(self.queue) >= self.capacity:
            return False
        self.queue.append(request)
        return True

    def select(self, walker_id):
        return self.queue.popleft() if self.queue else None

    def on_complete(self, walker_id, request):
        pass

    def pending_for(self, tenant_id):
        return sum(1 for r in self.queue if r.tenant_id == tenant_id)

    def pending_total(self):
        return len(self.queue)

    def on_tenant_set_changed(self, tenant_ids):
        pass


class FixedLatencyMemory:
    """Walker memory returning after a fixed delay."""

    def __init__(self, sim, latency=100):
        self.sim = sim
        self.latency = latency
        self.accesses = 0

    def walker_access(self, paddr, on_done, tenant_id=0):
        self.accesses += 1
        self.sim.after(self.latency, on_done)


def make_subsystem(num_walkers=2, capacity=8, pwc_entries=64, mem_latency=100,
                   dispatch_latency=0):
    sim = Simulator()
    layout = AddressLayout(page_size_bits=12)
    memory = FixedLatencyMemory(sim, mem_latency)
    policy = FifoPolicy(capacity)
    pws = PageWalkSubsystem(
        sim, memory, policy, num_walkers=num_walkers, pwc_entries=pwc_entries,
        pwc_latency=0, dispatch_latency=dispatch_latency, layout=layout,
    )
    frames = FrameAllocator(total_frames=1 << 20, frame_bytes=4096)
    for tenant in (0, 1):
        pt = PageTable(tenant, layout, frames)
        pws.register_tenant(tenant, pt)
    return sim, pws, memory


def map_and_walk(sim, pws, tenant, vpn, results):
    pws.page_tables[tenant].ensure_mapped(vpn)
    pws.request_walk(tenant, vpn, lambda req: results.append(req))


class TestWalkExecution:
    def test_cold_walk_makes_depth_accesses(self):
        sim, pws, memory = make_subsystem()
        results = []
        map_and_walk(sim, pws, 0, 0x10, results)
        sim.drain()
        assert len(results) == 1
        assert results[0].memory_accesses == 4
        assert memory.accesses == 4

    def test_walk_latency_is_sequential_levels(self):
        sim, pws, memory = make_subsystem(mem_latency=100)
        results = []
        map_and_walk(sim, pws, 0, 0x10, results)
        sim.drain()
        assert results[0].total_latency == 400  # 4 sequential accesses

    def test_pwc_hit_shortens_second_walk(self):
        sim, pws, memory = make_subsystem(mem_latency=100)
        results = []
        map_and_walk(sim, pws, 0, 0x10, results)
        sim.drain()
        # second page in the same leaf node: PWC skips 3 levels
        map_and_walk(sim, pws, 0, 0x11, results)
        sim.drain()
        assert results[1].memory_accesses == 1

    def test_dispatch_latency_added(self):
        sim, pws, memory = make_subsystem(mem_latency=100, dispatch_latency=3)
        results = []
        map_and_walk(sim, pws, 0, 0x10, results)
        sim.drain()
        assert results[0].completion_time == 403


class TestConcurrencyAndQueueing:
    def test_walkers_service_in_parallel(self):
        sim, pws, memory = make_subsystem(num_walkers=2, mem_latency=100)
        results = []
        map_and_walk(sim, pws, 0, 0x10, results)
        map_and_walk(sim, pws, 0, 1 << 27, results)  # disjoint subtree, no PWC help
        sim.drain()
        assert all(r.completion_time == 400 for r in results)

    def test_third_request_queues_behind_busy_walkers(self):
        sim, pws, memory = make_subsystem(num_walkers=2, mem_latency=100)
        results = []
        for i, vpn in enumerate((0x10, 1 << 27, 2 << 27)):
            map_and_walk(sim, pws, 0, vpn, results)
        sim.drain()
        by_vpn = {r.vpn: r for r in results}
        assert by_vpn[2 << 27].queueing_latency == 400

    def test_merge_duplicate_inflight_walks(self):
        sim, pws, memory = make_subsystem()
        results = []
        map_and_walk(sim, pws, 0, 0x10, results)
        pws.request_walk(0, 0x10, lambda req: results.append(req))
        sim.drain()
        assert len(results) == 2
        assert results[0] is results[1]  # one physical walk, two callbacks
        assert sim.stats.counter("pws.merged").value == 1

    def test_overflow_backpressure_and_replay(self):
        sim, pws, memory = make_subsystem(num_walkers=1, capacity=2,
                                          mem_latency=10)
        results = []
        # 1 in service + 2 queued + 2 overflow
        for i in range(5):
            map_and_walk(sim, pws, 0, i << 27, results)
        assert pws.overflowed_walks > 0
        assert sim.stats.counter("pws.overflow").value > 0
        sim.drain()
        assert len(results) == 5  # everything eventually completes
        assert pws.overflowed_walks == 0


class TestMetrics:
    def test_interleaving_counts_other_tenant_service_starts(self):
        sim, pws, memory = make_subsystem(num_walkers=1, mem_latency=10)
        results = []
        # tenant 1's walk arrives after two tenant-0 walks; FIFO services
        # both tenant-0 walks before it.
        map_and_walk(sim, pws, 0, 0 << 27, results)
        map_and_walk(sim, pws, 0, 1 << 27, results)
        map_and_walk(sim, pws, 1, 2 << 27, results)
        sim.drain()
        interleave_t1 = sim.stats.accumulator("pws.interleave.tenant1")
        assert interleave_t1.mean == pytest.approx(1.0)
        # the first tenant-0 walk started service immediately: 0 interleave
        interleave_t0 = sim.stats.accumulator("pws.interleave.tenant0")
        assert interleave_t0.count == 2

    def test_completion_counters_per_tenant(self):
        sim, pws, memory = make_subsystem()
        results = []
        map_and_walk(sim, pws, 0, 0x10, results)
        map_and_walk(sim, pws, 1, 0x20, results)
        sim.drain()
        assert sim.stats.counter("pws.completed.tenant0").value == 1
        assert sim.stats.counter("pws.completed.tenant1").value == 1

    def test_walker_busy_share_sampling(self):
        sim, pws, memory = make_subsystem(num_walkers=2, mem_latency=100)
        results = []
        map_and_walk(sim, pws, 0, 0x10, results)
        sim.drain()
        # 1 of 2 walkers busy for tenant 0 during the walk
        share = pws.mean_walker_share(0)
        assert 0 < share <= 0.5

    def test_inflight_tracking(self):
        sim, pws, memory = make_subsystem(mem_latency=100)
        results = []
        map_and_walk(sim, pws, 0, 0x10, results)
        assert pws.inflight_walks == 1
        sim.drain()
        assert pws.inflight_walks == 0
