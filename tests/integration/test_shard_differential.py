"""Byte-identity of the sharded parallel engine (DESIGN.md §13).

Sharding is a pure scheduling optimisation: per-SM state advances in
conservative time windows on independent shards, synchronising only at
the shared boundary (L2 TLB, walker pool, DRAM) — but nothing
observable may change.  These tests run every suite archetype under
every policy with ``shards=K`` and require the full observable state
(stats snapshot, per-tenant run stats, total cycles) to match the
serial oracle exactly.

The integrity layer gets the same treatment: an installed audit hook
makes the sharded conductor disable windows and fire every event as a
globally ordered serial step (the auditor and watchdog must observe
each event in order), so a sharded run under audit must be
byte-identical to the serial run *including* ``events_fired``.
"""

import dataclasses
import os

import pytest

from repro.engine.config import GpuConfig
from repro.engine.parallel_sim import ParallelSimulator, SHARDS_ENV
from repro.engine.simulator import Simulator
from repro.integrity import IntegrityConfig
from repro.tenancy.manager import MultiTenantManager
from repro.tenancy.tenant import Tenant
from repro.workloads.base import Workload
from repro.workloads.suite import BENCHMARKS, benchmark

SCALE = 0.05
#: The resident pair needs a longer trace: windows only open wide once
#: the 4 KiB footprint's cold misses are behind it.
RESIDENT_SCALE = 0.5
POLICIES = ("baseline", "static", "dws", "dwspp")

#: An L1-resident variant of HS: the sharded engine's home regime
#: (shard-local hit traffic with rare boundary crossings, so windows
#: span thousands of cycles).  The standard-footprint archetypes are
#: miss-heavy and mostly exercise the serial boundary path instead.
RESIDENT_SPEC = dataclasses.replace(BENCHMARKS["HS"], name="HSR",
                                    footprint_bytes=4096)


def run_once(workloads, policy, shards, warps=2, integrity=None, sms=4):
    cfg = GpuConfig.baseline(num_sms=sms).with_policy(policy)
    tenants = [Tenant(i, wl) for i, wl in enumerate(workloads)]
    manager = MultiTenantManager(cfg, tenants, warps_per_sm=warps,
                                 seed=3, integrity=integrity, shards=shards)
    result = manager.run()
    return result, manager


def observable(result):
    """Everything sharding is forbidden to change.

    ``events_fired`` and ``wall_seconds`` are deliberately excluded:
    the window path replays parked boundary intents as extra queue
    entries, so firing a different *number* of events is the one
    permitted difference (the fired callbacks and their order are
    identical).
    """
    return (
        result.total_cycles,
        result.stats,
        {t: dataclasses.asdict(s) for t, s in result.tenants.items()},
    )


@pytest.mark.parametrize("archetype", sorted(BENCHMARKS))
def test_shard_identity_all_policies(archetype):
    """shards=2 == serial oracle for every archetype under every policy."""
    for policy in POLICIES:
        pair = [benchmark(archetype, scale=SCALE), benchmark("HS", scale=SCALE)]
        serial, _ = run_once(pair, policy, shards=1)
        pair = [benchmark(archetype, scale=SCALE), benchmark("HS", scale=SCALE)]
        sharded, _ = run_once(pair, policy, shards=2)
        assert observable(sharded) == observable(serial), (
            f"{archetype} under {policy}: sharding changed observable state")


@pytest.mark.parametrize("shards", [2, 4, 8])
def test_shard_identity_resident_pair(shards):
    """The window-dominated regime, at every shard count the 8-SM
    machine supports.  Windows must actually open — a sharded run that
    never leaves the serial path proves nothing."""
    def pair():
        return [Workload(RESIDENT_SPEC, RESIDENT_SCALE),
                Workload(RESIDENT_SPEC, RESIDENT_SCALE)]

    serial, _ = run_once(pair(), "dws", shards=1, warps=1, sms=8)
    sharded, manager = run_once(pair(), "dws", shards=shards, warps=1, sms=8)
    assert observable(sharded) == observable(serial)
    stats = manager.sim.parallel_stats()
    assert stats["windows"] > 0, "resident pair must open windows"
    assert stats["window_events"] > 0


@pytest.mark.parametrize("policy", POLICIES)
def test_shard_identity_resident_all_policies(policy):
    def pair():
        return [Workload(RESIDENT_SPEC, RESIDENT_SCALE),
                Workload(RESIDENT_SPEC, RESIDENT_SCALE)]

    serial, _ = run_once(pair(), policy, shards=1, warps=1)
    sharded, _ = run_once(pair(), policy, shards=4, warps=1)
    assert observable(sharded) == observable(serial)


@pytest.mark.parametrize("audit", ["cheap", "full"])
def test_shard_identity_under_audit(audit):
    """Audit installs a per-event hook; the conductor must fall back to
    globally ordered serial steps, making even ``events_fired`` equal."""
    integrity = IntegrityConfig(audit=audit, audit_interval=64)

    def pair():
        return [Workload(RESIDENT_SPEC, RESIDENT_SCALE),
                Workload(RESIDENT_SPEC, RESIDENT_SCALE)]

    serial, _ = run_once(pair(), "dws", shards=1, warps=1,
                         integrity=integrity)
    sharded, manager = run_once(pair(), "dws", shards=4, warps=1,
                                integrity=integrity)
    assert observable(sharded) == observable(serial)
    assert sharded.events_fired == serial.events_fired
    assert manager.sim.parallel_stats()["windows"] == 0, (
        "windows must not open while a per-event hook is installed")


def test_shard_identity_with_watchdog():
    """A watchdog window smaller than the run must not trip on a healthy
    sharded simulation: events are counted globally, never per shard."""
    integrity = IntegrityConfig(watchdog_window=5_000)

    def pair():
        return [Workload(RESIDENT_SPEC, RESIDENT_SCALE),
                Workload(RESIDENT_SPEC, RESIDENT_SCALE)]

    serial, _ = run_once(pair(), "dws", shards=1, warps=1,
                         integrity=integrity)
    sharded, _ = run_once(pair(), "dws", shards=4, warps=1,
                          integrity=integrity)
    assert observable(sharded) == observable(serial)


def test_threads_backend_identity():
    """The threads backend must match the serial oracle bit for bit."""
    os.environ["REPRO_SHARD_BACKEND"] = "threads"
    try:
        def pair():
            return [Workload(RESIDENT_SPEC, RESIDENT_SCALE),
                    Workload(RESIDENT_SPEC, RESIDENT_SCALE)]

        sharded, manager = run_once(pair(), "dws", shards=4, warps=1)
    finally:
        os.environ.pop("REPRO_SHARD_BACKEND", None)
    serial, _ = run_once(pair(), "dws", shards=1, warps=1)
    assert observable(sharded) == observable(serial)
    assert manager.sim.backend == "threads"
    manager.sim.close()


def test_kill_switch_selects_serial_kernel():
    """shards=1, REPRO_SHARDS=1 and unset must all yield the plain
    serial kernel — the oracle every differential above compares to."""
    wl = [Workload(RESIDENT_SPEC, RESIDENT_SCALE)]
    _, manager = run_once(wl, "baseline", shards=1, warps=1)
    assert type(manager.sim) is Simulator
    assert manager.shards == 1

    os.environ[SHARDS_ENV] = "1"
    try:
        _, manager = run_once(wl, "baseline", shards=None, warps=1)
    finally:
        os.environ.pop(SHARDS_ENV, None)
    assert type(manager.sim) is Simulator

    _, manager = run_once(wl, "baseline", shards=None, warps=1)
    assert type(manager.sim) is Simulator


def test_env_selects_parallel_kernel():
    """REPRO_SHARDS=K activates the sharded engine without code changes,
    and an explicit ``shards=`` argument wins over the environment."""
    wl = [Workload(RESIDENT_SPEC, RESIDENT_SCALE)]
    os.environ[SHARDS_ENV] = "2"
    try:
        _, manager = run_once(wl, "baseline", shards=None, warps=1)
        assert isinstance(manager.sim, ParallelSimulator)
        assert manager.shards == 2
        _, manager = run_once(wl, "baseline", shards=1, warps=1)
        assert type(manager.sim) is Simulator
    finally:
        os.environ.pop(SHARDS_ENV, None)


def test_walk_fold_switch_does_not_affect_shards():
    """Shards force-disable every fold rung regardless of the
    environment: with ``REPRO_FASTPATH_WALK`` explicitly set, a sharded
    run must still match the serial oracle byte for byte, and the
    sharded GPU's fold gates must be closed (the fold's quiescence
    arguments assume a single global event order that shard-local
    windows do not provide)."""
    os.environ["REPRO_FASTPATH_WALK"] = "1"
    try:
        def pair():
            return [Workload(RESIDENT_SPEC, RESIDENT_SCALE),
                    Workload(RESIDENT_SPEC, RESIDENT_SCALE)]

        sharded, manager = run_once(pair(), "dws", shards=4, warps=1)
        serial, _ = run_once(pair(), "dws", shards=1, warps=1)
    finally:
        os.environ.pop("REPRO_FASTPATH_WALK", None)
    assert observable(sharded) == observable(serial)
    assert manager.gpu.fold_enabled is False
    assert manager.gpu.fold_walk_enabled is False
    stats = manager.gpu.fastpath_stats()
    assert stats["folded_l2_tlb_hits"] == 0
    assert stats["folded_walks"] == 0
    assert stats["batched_dram_fetches"] == 0


def test_shards_clamped_to_sm_count():
    """A shard must own at least one SM: K > num_sms clamps to num_sms."""
    wl = [Workload(RESIDENT_SPEC, RESIDENT_SCALE)]
    _, manager = run_once(wl, "baseline", shards=64, warps=1, sms=4)
    assert manager.shards == 4
    assert manager.sim.num_shards == 4


def _run_processes_backend(workloads, policy, shards, warps=2, sms=4):
    """run_once with the worker-pool backend selected via environment."""
    os.environ["REPRO_SHARD_BACKEND"] = "processes"
    try:
        result, manager = run_once(workloads, policy, shards,
                                   warps=warps, sms=sms)
    finally:
        os.environ.pop("REPRO_SHARD_BACKEND", None)
    manager.sim.close()
    return result, manager


@pytest.mark.parametrize("archetype", sorted(BENCHMARKS))
def test_processes_identity_all_policies(archetype):
    """The multi-process backend must match the serial oracle bit for
    bit across the full archetype x policy grid at shards=2: same stats
    snapshot, same per-tenant tables, same total cycles."""
    for policy in POLICIES:
        pair = [benchmark(archetype, scale=SCALE), benchmark("HS", scale=SCALE)]
        serial, _ = run_once(pair, policy, shards=1)
        pair = [benchmark(archetype, scale=SCALE), benchmark("HS", scale=SCALE)]
        procs, manager = _run_processes_backend(pair, policy, shards=2)
        assert manager.sim.backend == "processes"
        assert observable(procs) == observable(serial), (
            f"{archetype} under {policy}: processes backend diverged "
            "from the serial schedule")


@pytest.mark.parametrize("shards", [2, 4])
def test_processes_identity_resident_pair(shards):
    """The window-dominated regime on real worker processes, at the two
    shard counts the perf gate measures.  Windows must open and real
    events must fire inside workers — a degraded run proves nothing."""
    def pair():
        return [Workload(RESIDENT_SPEC, RESIDENT_SCALE),
                Workload(RESIDENT_SPEC, RESIDENT_SCALE)]

    serial, _ = run_once(pair(), "dws", shards=1, warps=1, sms=8)
    procs, manager = _run_processes_backend(pair(), "dws", shards=shards,
                                            warps=1, sms=8)
    assert observable(procs) == observable(serial)
    stats = manager.sim.parallel_stats()
    assert stats["windows"] > 0, "resident pair must open windows"
    assert stats["window_events"] > 0
    assert manager.sim._procs is not None, "worker pool never engaged"
