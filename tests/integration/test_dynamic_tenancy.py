"""Tests for dynamic tenant arrival/departure (paper Section VI-C)."""

import pytest

from repro.engine.config import GpuConfig
from repro.engine.rng import DeterministicRng
from repro.engine.simulator import Simulator
from repro.gpu.gpu import Gpu
from repro.gpu.warp import WarpOp


def stream_of_pages(pages, compute=1):
    return iter([WarpOp(compute, [p << 12]) for p in pages])


def make_gpu(policy="dws", num_sms=4):
    sim = Simulator()
    cfg = (GpuConfig.baseline(num_sms=num_sms).with_walker_count(4)
           .with_policy(policy))
    gpu = Gpu(sim, cfg, tenant_ids=[0, 1])
    return sim, gpu


class TestArrival:
    def test_sole_tenant_owns_all_walkers(self):
        sim, gpu = make_gpu()
        gpu.add_tenant(0)
        policy = gpu.walk_subsystem_for(0).policy
        assert policy.twm.owned_walkers(0) == [0, 1, 2, 3]

    def test_arrival_repartitions_equally(self):
        sim, gpu = make_gpu()
        gpu.add_tenant(0)
        gpu.add_tenant(1)
        policy = gpu.walk_subsystem_for(0).policy
        assert len(policy.twm.owned_walkers(0)) == 2
        assert len(policy.twm.owned_walkers(1)) == 2

    def test_inflight_walks_survive_arrival(self):
        sim, gpu = make_gpu()
        gpu.add_tenant(0)
        gpu.launch_warps(0, [stream_of_pages(range(1, 40))
                             for _ in range(4)])
        sim.run(until=300)  # walks in flight and queued
        pws = gpu.walk_subsystem_for(0)
        assert pws.inflight_walks > 0
        gpu.add_tenant(1)  # repartition mid-flight
        sim.drain()
        enq = sim.stats.counter("pws.walks.tenant0").value
        done = sim.stats.counter("pws.completed.tenant0").value
        assert enq == done > 0  # nothing lost or stuck


class TestDeparture:
    def test_departure_returns_walkers(self):
        sim, gpu = make_gpu()
        gpu.add_tenant(0)
        gpu.add_tenant(1)
        gpu.walk_subsystem_for(1).unregister_tenant(1)
        policy = gpu.walk_subsystem_for(0).policy
        assert policy.twm.owned_walkers(0) == [0, 1, 2, 3]
        assert policy.twm.owned_walkers(1) == []

    def test_departed_tenants_tlb_entries_invalidated(self):
        sim, gpu = make_gpu()
        gpu.add_tenant(0)
        gpu.add_tenant(1)
        gpu.launch_warps(1, [stream_of_pages(range(1, 10))])
        sim.drain()
        tlb = gpu.l2_tlb_for(1)
        assert tlb.resident(1) > 0
        tlb.invalidate_tenant(1)
        assert tlb.resident(1) == 0

    def test_remaining_tenant_uses_reclaimed_walkers(self):
        sim, gpu = make_gpu()
        gpu.add_tenant(0)
        gpu.add_tenant(1)
        gpu.walk_subsystem_for(1).unregister_tenant(1)
        # after departure, tenant 0's burst spreads over all 4 walkers
        gpu.launch_warps(0, [stream_of_pages(range(1 + 50 * w, 40 + 50 * w))
                             for w in range(4)])
        sim.drain()
        pws = gpu.walk_subsystem_for(0)
        serving_walkers = [
            w for w in range(4) if pws._starts_by_tenant[w].get(0, 0) > 0
        ]
        assert len(serving_walkers) > 2  # more than the old half-partition


class TestSequenceStability:
    @pytest.mark.parametrize("policy", ["static", "dws", "dwspp"])
    def test_arrive_depart_cycle_conserves_walks(self, policy):
        sim, gpu = make_gpu(policy)
        gpu.add_tenant(0)
        gpu.launch_warps(0, [stream_of_pages(range(1, 60), compute=3)
                             for _ in range(3)])
        sim.run(until=200)
        gpu.add_tenant(1)
        finished = []
        gpu.tenants[1].on_complete = lambda: finished.append(sim.now)
        gpu.launch_warps(1, [stream_of_pages(range(1000, 1020))])
        # a tenant departs only after finishing its execution
        sim.run(stop_when=lambda: bool(finished))
        gpu.walk_subsystem_for(1).unregister_tenant(1)
        sim.drain()
        for t in (0, 1):
            enq = sim.stats.counter(f"pws.walks.tenant{t}").value
            done = sim.stats.counter(f"pws.completed.tenant{t}").value
            assert enq == done
