"""Byte-identity of the latency-folding fast path (DESIGN.md §12).

The fold is a pure scheduling optimisation: a combinational access (L1
TLB hit + L1 data hit with no in-flight state that could reorder it)
completes arithmetically instead of through the event queue.  Nothing
observable may change — these tests run every suite archetype under
every policy with folding on and off and require the full observable
state (stats snapshot, per-tenant run stats, total cycles) to match
exactly.

The audit levels get the same treatment: an installed audit hook
disables folding (the auditor samples *event-path* state that folds
bypass), so a fold-requested run under ``audit=cheap``/``full`` must be
byte-identical to a fold-off run under the same audit level — and must
fold nothing.
"""

import dataclasses
import os

import pytest

from repro.engine.config import GpuConfig
from repro.integrity import IntegrityConfig
from repro.tenancy.manager import MultiTenantManager
from repro.tenancy.tenant import Tenant
from repro.workloads.base import Workload
from repro.workloads.suite import BENCHMARKS, benchmark

SCALE = 0.05
#: The resident pair needs a longer trace: folds only start once the
#: 4 KiB footprint's cold misses are behind it.
RESIDENT_SCALE = 0.5
POLICIES = ("baseline", "static", "dws", "dwspp")

#: An L1-resident variant of HS: the fast path's home regime (every
#: post-warm-up access is an L1 TLB + L1 data hit).  The suite
#: archetypes at their standard footprints rarely fold; this one folds
#: on nearly every access, so it is the case that actually stresses the
#: folded completion ordering.
RESIDENT_SPEC = dataclasses.replace(BENCHMARKS["HS"], name="HSR",
                                    footprint_bytes=4096)


def run_once(workloads, policy, fold, warps=2, integrity=None, sms=4,
             walk=None):
    os.environ["REPRO_FASTPATH"] = "1" if fold else "0"
    if walk is not None:
        os.environ["REPRO_FASTPATH_WALK"] = "1" if walk else "0"
    try:
        cfg = GpuConfig.baseline(num_sms=sms).with_policy(policy)
        tenants = [Tenant(i, wl) for i, wl in enumerate(workloads)]
        manager = MultiTenantManager(cfg, tenants, warps_per_sm=warps,
                                     seed=3, integrity=integrity)
        result = manager.run()
    finally:
        os.environ.pop("REPRO_FASTPATH", None)
        os.environ.pop("REPRO_FASTPATH_WALK", None)
    return result, manager


def observable(result):
    """Everything a fold is forbidden to change.

    ``events_fired`` is deliberately excluded: folding completes hits
    without queue events, so firing fewer of them is the one permitted
    difference.
    """
    return (
        result.total_cycles,
        result.stats,
        {t: dataclasses.asdict(s) for t, s in result.tenants.items()},
    )


@pytest.mark.parametrize("archetype", sorted(BENCHMARKS))
def test_fold_identity_all_policies(archetype):
    """Fold on == fold off for every archetype under every policy."""
    for policy in POLICIES:
        pair = [benchmark(archetype, scale=SCALE), benchmark("HS", scale=SCALE)]
        on, _ = run_once(pair, policy, fold=True)
        pair = [benchmark(archetype, scale=SCALE), benchmark("HS", scale=SCALE)]
        off, _ = run_once(pair, policy, fold=False)
        assert observable(on) == observable(off), (
            f"{archetype} under {policy}: folding changed observable state")


@pytest.mark.parametrize("policy", POLICIES)
def test_fold_identity_resident_pair(policy):
    """The hit-dominated regime, where folds actually fire en masse."""
    def pair():
        return [Workload(RESIDENT_SPEC, RESIDENT_SCALE),
                Workload(RESIDENT_SPEC, RESIDENT_SCALE)]

    on, manager = run_once(pair(), policy, fold=True, warps=1)
    off, off_manager = run_once(pair(), policy, fold=False, warps=1)
    assert observable(on) == observable(off)
    stats = manager.gpu.fastpath_stats()
    assert stats["folded_accesses"] > 0, "resident pair must exercise the fold"
    assert stats["hit_path_fraction"] > 0.5
    assert off_manager.gpu.fastpath_stats()["folded_accesses"] == 0
    # folding must strictly reduce queue traffic when it fires
    assert on.events_fired < off.events_fired


@pytest.mark.parametrize("audit", ["cheap", "full"])
def test_fold_disabled_under_audit(audit):
    """An installed audit hook closes the fold gate entirely."""
    integrity = IntegrityConfig(audit=audit, audit_interval=64)

    def pair():
        return [Workload(RESIDENT_SPEC, RESIDENT_SCALE),
                Workload(RESIDENT_SPEC, RESIDENT_SCALE)]

    on, manager = run_once(pair(), "dws", fold=True, warps=1,
                           integrity=integrity)
    assert manager.gpu.fastpath_stats()["folded_accesses"] == 0, (
        "folds must not fire while the auditor's per-event hook is installed")
    off, _ = run_once(pair(), "dws", fold=False, warps=1, integrity=integrity)
    assert observable(on) == observable(off)
    assert on.events_fired == off.events_fired


def test_kill_switch_disables_folding():
    """REPRO_FASTPATH=0 must zero the fold counters outright."""
    _, manager = run_once(
        [Workload(RESIDENT_SPEC, RESIDENT_SCALE)], "baseline", fold=False, warps=1)
    assert manager.gpu.fold_enabled is False
    stats = manager.gpu.fastpath_stats()
    assert stats["folded_accesses"] == 0
    assert stats["hit_path_fraction"] == 0.0


def test_fold_identity_across_stop_boundary():
    """Hit ticks must not leak past ``sim.stop()``.

    At 8 SMs this seed stops the run with deferred data-cache probes
    still queued; the event path never fires them, so the fold's
    eagerly-probed accesses must not count their hits up front —
    the eager tick made ``l1c.sm3.hits`` differ by 2.
    """
    def pair():
        return [Workload(RESIDENT_SPEC, RESIDENT_SCALE),
                Workload(RESIDENT_SPEC, RESIDENT_SCALE)]

    on, _ = run_once(pair(), "dws", fold=True, warps=1, sms=8)
    off, _ = run_once(pair(), "dws", fold=False, warps=1, sms=8)
    assert observable(on) == observable(off)


def test_fold_tick_rides_the_probe_slot():
    """The deferred hit tick must occupy the probe's exact queue slot.

    Deferring the tick to a *completion batch* at the probe cycle is
    not enough: a batch carrier pushed earlier in the same cycle by a
    previous fold lets the tick fire ahead of a same-cycle stop that
    the probe event would not have survived, over-counting hits
    (``l1c.sm7.hits`` +2 on this trace).  Pushing the tick as a raw
    entry at the probe cycle reproduces the probe's FIFO position, so
    it fires or drops exactly with the event it replaces.  This is the
    benchmark sweep's ``light_resident`` configuration (seed 0).
    """
    def run(fold):
        os.environ["REPRO_FASTPATH"] = "1" if fold else "0"
        try:
            cfg = GpuConfig.baseline(num_sms=8)
            tenants = [Tenant(i, Workload(RESIDENT_SPEC, 2.0))
                       for i in range(2)]
            return MultiTenantManager(cfg, tenants, warps_per_sm=1,
                                      seed=0).run()
        finally:
            os.environ.pop("REPRO_FASTPATH", None)

    assert observable(run(True)) == observable(run(False))


@pytest.mark.parametrize("archetype", sorted(BENCHMARKS))
def test_walk_fold_identity_all_policies(archetype):
    """Walk rungs on == off for every archetype under every policy.

    Both sides keep the parent fold on: this isolates the DESIGN.md §14
    rungs (L2-TLB-hit fold, PWC-terminated walk fold, DRAM batching)
    from the §12 hit fold the previous tests cover.
    """
    for policy in POLICIES:
        pair = [benchmark(archetype, scale=SCALE), benchmark("HS", scale=SCALE)]
        on, _ = run_once(pair, policy, fold=True, walk=True)
        pair = [benchmark(archetype, scale=SCALE), benchmark("HS", scale=SCALE)]
        off, _ = run_once(pair, policy, fold=True, walk=False)
        assert observable(on) == observable(off), (
            f"{archetype} under {policy}: walk folding changed observable "
            "state")


@pytest.mark.parametrize("policy", POLICIES)
def test_walk_fold_engagement(policy):
    """The miss-dominated regime, where the walk rungs actually fire.

    JPEG.LIB at this scale warms the L2 TLB and PWC enough for rungs
    (a) and (b) to engage while every L2 miss exercises rung (c); a
    walk-rung differential on a config where they never fire would be
    vacuous.
    """
    def pair():
        return [benchmark("JPEG", scale=0.2), benchmark("LIB", scale=0.2)]

    on, manager = run_once(pair(), policy, fold=True, walk=True, warps=1)
    off, off_manager = run_once(pair(), policy, fold=True, walk=False,
                                warps=1)
    assert observable(on) == observable(off)
    stats = manager.gpu.fastpath_stats()
    assert stats["folded_l2_tlb_hits"] > 0, "rung (a) must engage"
    assert stats["batched_dram_fetches"] > 0, "rung (c) must engage"
    assert stats["batched_dram_returns"] > 0
    off_stats = off_manager.gpu.fastpath_stats()
    assert off_stats["folded_l2_tlb_hits"] == 0
    assert off_stats["folded_walks"] == 0
    assert off_stats["batched_dram_fetches"] == 0
    # Batching and folding must never add queue traffic.  Equality is
    # legitimate at this scale: the lazy batch protocol keeps the first
    # two same-cycle completions on their own entries (direct + carrier)
    # and only saves entries from the third member on.
    assert on.events_fired <= off.events_fired


def test_walk_fold_fires_pwc_rung():
    """Rung (b) — the deferred-tick walk fold — must engage somewhere
    in the grid, or its identity coverage is vacuous."""
    pair = [benchmark("JPEG", scale=0.5), benchmark("LIB", scale=0.5)]
    _, manager = run_once(pair, "dws", fold=True, walk=True, warps=1)
    stats = manager.gpu.fastpath_stats()
    assert stats["folded_walks"] > 0
    assert stats["walk_fold_fraction"] > 0.0


def test_walk_fold_identity_across_stop_boundary():
    """Walk-rung ticks must not leak past ``sim.stop()``.

    At 8 SMs this trace ends with folded-walk tick chains and batched
    DRAM carriers still queued; the slot-exact discipline (DESIGN.md
    §14) requires each deferred tick to fire or drop exactly as the
    event it replaces would have.
    """
    def pair():
        return [benchmark("JPEG", scale=0.5), benchmark("LIB", scale=0.5)]

    on, _ = run_once(pair(), "dws", fold=True, walk=True, warps=1, sms=8)
    off, _ = run_once(pair(), "dws", fold=True, walk=False, warps=1, sms=8)
    assert observable(on) == observable(off)


def test_walk_kill_switches():
    """REPRO_FASTPATH_WALK=0 zeroes only the walk rungs; REPRO_FASTPATH=0
    zeroes them too (the parent switch wins)."""
    pair = [benchmark("JPEG", scale=0.2), benchmark("LIB", scale=0.2)]
    _, manager = run_once(pair, "dws", fold=True, walk=False, warps=1)
    assert manager.gpu.fold_walk_enabled is False
    assert manager.gpu.fold_enabled is True
    stats = manager.gpu.fastpath_stats()
    assert stats["folded_l2_tlb_hits"] == 0
    assert stats["folded_walks"] == 0
    assert stats["batched_dram_fetches"] == 0
    assert stats["batched_dram_returns"] == 0

    pair = [benchmark("JPEG", scale=0.2), benchmark("LIB", scale=0.2)]
    _, manager = run_once(pair, "dws", fold=False, walk=True, warps=1)
    stats = manager.gpu.fastpath_stats()
    assert stats["folded_l2_tlb_hits"] == 0
    assert stats["folded_walks"] == 0
    assert stats["batched_dram_fetches"] == 0


def test_walk_fold_disabled_under_audit():
    """An installed audit hook closes every walk-rung gate too."""
    integrity = IntegrityConfig(audit="cheap", audit_interval=64)
    pair = [benchmark("JPEG", scale=0.2), benchmark("LIB", scale=0.2)]
    _, manager = run_once(pair, "dws", fold=True, walk=True, warps=1,
                          integrity=integrity)
    stats = manager.gpu.fastpath_stats()
    assert stats["folded_l2_tlb_hits"] == 0
    assert stats["folded_walks"] == 0
    assert stats["batched_dram_fetches"] == 0
    assert stats["batched_dram_returns"] == 0


def test_mshr_stall_counters_present_at_zero():
    """The hoisted per-SM mshr_stalls counters must appear in every
    snapshot, zero-valued when no stall occurred, so fold-on and
    fold-off snapshots stay key-identical."""
    result, manager = run_once(
        [Workload(RESIDENT_SPEC, RESIDENT_SCALE)], "baseline", fold=True, warps=1)
    keys = [k for k in result.stats
            if k.startswith("l1tlb.") and k.endswith(".mshr_stalls")]
    assert len(keys) == manager.config.sm.num_sms
    assert all(result.stats[k] == 0 for k in keys)
