"""End-to-end tests of the paper's core claims on small simulations.

These exercise the full stack (SMs -> TLBs -> policies -> walkers ->
caches -> DRAM) and check the *mechanistic* invariants the paper argues
for — not the headline speedups (the benchmarks cover those at scale).
"""

import pytest

from repro.engine.config import GpuConfig
from repro.gpu.warp import WarpOp
from repro.tenancy.manager import MultiTenantManager
from repro.tenancy.tenant import Tenant


class BurstWorkload:
    """Configurable synthetic workload: ``pages`` distinct pages per warp,
    random-ish spread, ``compute`` gap, ``ops`` memory ops per warp."""

    def __init__(self, name, ops=40, compute=2, page_stride=977, base=1):
        self.name = name
        self.ops = ops
        self.compute = compute
        self.page_stride = page_stride
        self.base = base

    def build_streams(self, num_warps, rng):
        streams = []
        for w in range(num_warps):
            ops = [
                WarpOp(self.compute,
                       [(self.base + w * 131071 + i * self.page_stride) << 12])
                for i in range(self.ops)
            ]
            streams.append(iter(ops))
        return streams


class TrickleWorkload(BurstWorkload):
    """Few pages, large compute gaps: a light tenant."""

    def __init__(self, name):
        super().__init__(name, ops=12, compute=120, page_stride=3)


def run(policy, num_sms=6, warps=3, heavy_ops=40):
    # 4 walkers instead of 16 so the toy-scale burst actually queues
    cfg = (GpuConfig.baseline(num_sms=num_sms)
           .with_walker_count(4).with_policy(policy))
    manager = MultiTenantManager(
        cfg,
        [Tenant(0, BurstWorkload("heavy", ops=heavy_ops)),
         Tenant(1, TrickleWorkload("light"))],
        warps_per_sm=warps,
    )
    return manager.run()


class TestWalkConservation:
    @pytest.mark.parametrize("policy", ["baseline", "static", "dws", "dwspp"])
    def test_every_walk_completes(self, policy):
        r = run(policy)
        for t in (0, 1):
            enqueued = r.stat(f"pws.walks.tenant{t}")
            completed = r.stat(f"pws.completed.tenant{t}")
            assert enqueued == completed > 0


class TestInterleavingBounds:
    def test_baseline_interleaves_light_tenant_heavily(self):
        r = run("baseline")
        # the trickle tenant's walks queue behind the bursty tenant's
        assert r.stat("pws.interleave.tenant1.mean") > 1.0

    def test_dws_interleaving_bounded_by_owned_walkers(self):
        """Paper Section V: under DWS a walk waits for at most one
        other-tenant walk per owned walker (the in-flight steals)."""
        r = run("dws")
        owned = GpuConfig.baseline().walkers.num_walkers // 2
        for t in (0, 1):
            stat = f"pws.interleave.tenant{t}"
            # check the maximum, not the mean: the bound is per-walk
            assert r.stats.get(stat + ".mean", 0) <= owned
        # and the mean is a small fraction of the baseline's
        base = run("baseline")
        assert (r.stat("pws.interleave.tenant1.mean")
                < max(1.0, base.stat("pws.interleave.tenant1.mean")))

    def test_static_partitioning_never_crosses_tenants(self):
        r = run("static")
        assert r.stat("pws.stolen.tenant0") == 0
        assert r.stat("pws.stolen.tenant1") == 0
        # with no stealing there is no cross-tenant service at all
        assert r.stat("pws.interleave.tenant0.mean") == 0
        assert r.stat("pws.interleave.tenant1.mean") == 0


class TestStealingDirection:
    def test_dws_steals_from_the_bursty_tenant(self):
        r = run("dws")
        # walks of tenant 0 (bursty) get stolen by tenant 1's idle walkers
        assert r.stat("pws.stolen.tenant0") > 0
        # the trickle tenant's own walks rarely need stealing
        assert r.stat("pws.stolen.tenant0") >= r.stat("pws.stolen.tenant1")

    def test_stealing_helps_the_bursty_tenant_vs_static(self):
        static = run("static")
        dws = run("dws")
        assert dws.ipc_of(0) > static.ipc_of(0)


class TestWorkConservation:
    @pytest.mark.parametrize("policy", ["baseline", "static", "dws", "dwspp"])
    def test_first_execution_instruction_count_is_policy_independent(self, policy):
        """Policies change timing, never the work done per execution."""
        r = run(policy)
        baseline = run("baseline")
        for t in (0, 1):
            assert (r.tenants[t].executions[0].instructions
                    == baseline.tenants[t].executions[0].instructions)

    def test_determinism_across_runs(self):
        a, b = run("dws"), run("dws")
        assert a.total_cycles == b.total_cycles
        assert a.stats == b.stats


class TestIdealizedConfigs:
    def test_separate_walkers_eliminate_interleaving(self):
        cfg = GpuConfig.baseline(num_sms=6).with_separate_tlb_and_walkers()
        manager = MultiTenantManager(
            cfg,
            [Tenant(0, BurstWorkload("heavy")),
             Tenant(1, TrickleWorkload("light"))],
            warps_per_sm=3,
        )
        r = manager.run()
        # each tenant has a private subsystem: zero cross-tenant waits
        for t in (0, 1):
            assert r.stat(f"pws.t{t}.interleave.tenant{t}.mean") == 0

    def test_s_tlb_ptw_at_least_matches_baseline_throughput(self):
        base = run("baseline")
        cfg = GpuConfig.baseline(num_sms=6).with_separate_tlb_and_walkers()
        manager = MultiTenantManager(
            cfg,
            [Tenant(0, BurstWorkload("heavy")),
             Tenant(1, TrickleWorkload("light"))],
            warps_per_sm=3,
        )
        ideal = manager.run()
        base_total = base.ipc_of(0) + base.ipc_of(1)
        ideal_total = ideal.ipc_of(0) + ideal.ipc_of(1)
        assert ideal_total >= base_total * 0.95


class TestTlbShareCoupling:
    def test_walker_share_and_tlb_share_move_together(self):
        """Figure 9's mechanism at unit scale: giving the light tenant
        dedicated walkers raises both its walker and TLB shares."""
        base = run("baseline", heavy_ops=60)
        dws = run("dws", heavy_ops=60)
        light_pw_delta = (dws.stat("pws.walker_share.tenant1")
                          - base.stat("pws.walker_share.tenant1"))
        light_tlb_delta = (dws.stat("l2tlb.tlb_share.tenant1")
                           - base.stat("l2tlb.tlb_share.tenant1"))
        heavy_tlb_delta = (dws.stat("l2tlb.tlb_share.tenant0")
                           - base.stat("l2tlb.tlb_share.tenant0"))
        # heavy tenant's completed-walk rate drops under DWS -> its TLB
        # share cannot grow while the light tenant's shrinks
        assert light_tlb_delta * heavy_tlb_delta <= 0 or abs(light_tlb_delta) < 0.05
