"""Property test: full-stack determinism over random mini workloads.

Any (workload shape, policy) combination must produce bit-identical
results across repeated runs — the foundation of every A/B comparison
the harness performs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.config import GpuConfig
from repro.gpu.warp import WarpOp
from repro.tenancy.manager import MultiTenantManager
from repro.tenancy.tenant import Tenant


class ScriptedWorkload:
    """A workload defined entirely by a (pages, compute) script."""

    def __init__(self, name, script):
        self.name = name
        self.script = script

    def build_streams(self, num_warps, rng):
        return [
            iter([WarpOp(compute, [(page + 1 + w * 97) << 12])
                  for page, compute in self.script])
            for w in range(num_warps)
        ]


workload_scripts = st.lists(
    st.tuples(st.integers(0, 40), st.integers(0, 12)),
    min_size=1, max_size=12,
)


@settings(max_examples=15, deadline=None)
@given(
    script_a=workload_scripts,
    script_b=workload_scripts,
    policy=st.sampled_from(["baseline", "static", "dws", "dwspp"]),
    seed=st.integers(0, 3),
)
def test_identical_runs_bit_for_bit(script_a, script_b, policy, seed):
    def run():
        cfg = (GpuConfig.baseline(num_sms=4).with_walker_count(4)
               .with_policy(policy))
        manager = MultiTenantManager(
            cfg,
            [Tenant(0, ScriptedWorkload("a", script_a)),
             Tenant(1, ScriptedWorkload("b", script_b))],
            warps_per_sm=2, seed=seed,
        )
        return manager.run()

    first, second = run(), run()
    assert first.total_cycles == second.total_cycles
    assert first.stats == second.stats
    for t in (0, 1):
        assert (first.tenants[t].instructions
                == second.tenants[t].instructions)
        assert (first.tenants[t].completed_executions
                == second.tenants[t].completed_executions)
