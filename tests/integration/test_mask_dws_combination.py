"""Integration tests for the MASK and MASK+DWS configurations.

The paper treats MASK (TLB-side) and DWS (walker-side) as orthogonal
and evaluates their combination; these tests check the combination's
mechanics end-to-end: both mechanisms are active simultaneously and the
combined policy inherits DWS's walk-conservation and stealing behaviour
plus MASK's epoch accounting.
"""

import pytest

from repro.engine.config import GpuConfig
from repro.gpu.warp import WarpOp
from repro.tenancy.manager import MultiTenantManager
from repro.tenancy.tenant import Tenant


class ThrashWorkload:
    """Many distinct pages, little reuse: low TLB utility."""

    def __init__(self, name, ops=60):
        self.name = name
        self.ops = ops

    def build_streams(self, num_warps, rng):
        return [
            iter([WarpOp(1, [(1 + w * 5000 + i * 37) << 12])
                  for i in range(self.ops)])
            for w in range(num_warps)
        ]


class ReuseWorkload:
    """A small hot set, revisited: high TLB utility."""

    def __init__(self, name, ops=60):
        self.name = name
        self.ops = ops

    def build_streams(self, num_warps, rng):
        return [
            iter([WarpOp(6, [((i % 6) + 1 + w * 8) << 12])
                  for i in range(self.ops)])
            for w in range(num_warps)
        ]


def run(policy):
    # short MASK epochs so the toy-scale run crosses several of them
    cfg = (GpuConfig.baseline(num_sms=4).with_walker_count(4)
           .with_policy(policy, epoch_lookups=128, tokens=64))
    manager = MultiTenantManager(
        cfg,
        [Tenant(0, ThrashWorkload("thrash")),
         Tenant(1, ReuseWorkload("reuse"))],
        warps_per_sm=3,
    )
    return manager, manager.run()


class TestMaskAlone:
    def test_mask_epochs_progress(self):
        manager, result = run("mask")
        assert manager.gpu.mask is not None
        assert manager.gpu.mask.epochs_completed >= 1

    def test_mask_keeps_shared_fifo_walkers(self):
        manager, result = run("mask")
        # no partitioning, no stealing under plain MASK
        assert result.stat("pws.stolen.tenant0") == 0
        assert result.stat("pws.stolen.tenant1") == 0


class TestMaskPlusDws:
    def test_both_mechanisms_active(self):
        manager, result = run("mask+dws")
        assert manager.gpu.mask is not None
        assert manager.gpu.mask.epochs_completed >= 1
        # DWS stealing engaged for the thrashing tenant
        assert result.stat("pws.stolen.tenant0") > 0

    def test_walk_conservation_under_combination(self):
        manager, result = run("mask+dws")
        for t in (0, 1):
            assert (result.stat(f"pws.walks.tenant{t}")
                    == result.stat(f"pws.completed.tenant{t}"))

    def test_tokens_favor_the_reuse_tenant(self):
        manager, result = run("mask+dws")
        mask = manager.gpu.mask
        # after at least one epoch, the high-utility tenant holds at
        # least as many fill tokens as the thrashing one
        assert mask.tokens_of(1) >= mask.tokens_of(0)

    def test_combination_completes_with_sane_ipc(self):
        _, result = run("mask+dws")
        for t in (0, 1):
            assert result.ipc_of(t) > 0
