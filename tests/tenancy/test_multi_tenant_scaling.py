"""Tests for three- and four-tenant runs (paper Section VII-F plumbing)."""

import pytest

from repro.engine.config import GpuConfig
from repro.gpu.warp import WarpOp
from repro.metrics import total_ipc
from repro.tenancy.manager import MultiTenantManager
from repro.tenancy.tenant import Tenant


class SmallWorkload:
    def __init__(self, name, pages=12, compute=5):
        self.name = name
        self.pages = pages
        self.compute = compute

    def build_streams(self, num_warps, rng):
        return [
            iter([WarpOp(self.compute, [(1 + w * 64 + p) << 12])
                  for p in range(self.pages)])
            for w in range(num_warps)
        ]


def run_n_tenants(n, policy="dws", num_sms=8, walkers=None):
    cfg = GpuConfig.baseline(num_sms=num_sms).with_policy(policy)
    if walkers is not None:
        cfg = cfg.with_walker_count(walkers)
    tenants = [Tenant(i, SmallWorkload(f"wl{i}", pages=8 + 4 * i))
               for i in range(n)]
    return MultiTenantManager(cfg, tenants, warps_per_sm=2).run()


class TestThreeAndFourTenants:
    @pytest.mark.parametrize("n", [3, 4])
    def test_all_tenants_complete(self, n):
        result = run_n_tenants(n)
        assert len(result.tenant_ids) == n
        for t in result.tenant_ids:
            assert result.tenants[t].completed_executions >= 1
            assert result.ipc_of(t) > 0

    @pytest.mark.parametrize("n", [3, 4])
    def test_sm_partition_covers_gpu(self, n):
        cfg = GpuConfig.baseline(num_sms=8)
        manager = MultiTenantManager(
            cfg, [Tenant(i, SmallWorkload(f"w{i}")) for i in range(n)],
            warps_per_sm=2,
        )
        covered = sorted(
            sm for t in range(n) for sm in manager.gpu.tenants[t].sm_ids
        )
        assert covered == list(range(8))

    def test_equal_walker_split_with_three_tenants(self):
        # 15 walkers divide evenly among 3 tenants (the paper's trick)
        result = run_n_tenants(3, walkers=15)
        assert result.config.walkers.num_walkers == 15

    @pytest.mark.parametrize("policy", ["baseline", "static", "dws", "dwspp"])
    def test_walk_conservation_at_n_tenants(self, policy):
        result = run_n_tenants(3, policy=policy)
        for t in result.tenant_ids:
            assert (result.stat(f"pws.walks.tenant{t}")
                    == result.stat(f"pws.completed.tenant{t}"))

    def test_total_ipc_aggregates_all_tenants(self):
        result = run_n_tenants(4)
        assert total_ipc(result) == pytest.approx(
            sum(result.ipc_of(t) for t in result.tenant_ids))


class TestWalkerShareBound:
    def test_shares_sum_to_at_most_one(self):
        result = run_n_tenants(3)
        total_share = sum(
            result.stat(f"pws.walker_share.tenant{t}")
            for t in result.tenant_ids
        )
        assert total_share <= 1.0 + 1e-9
