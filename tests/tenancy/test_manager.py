"""Tests for the multi-tenant manager and its relaunch methodology."""

import pytest

from repro.engine.config import GpuConfig
from repro.gpu.warp import WarpOp
from repro.tenancy.manager import MultiTenantManager
from repro.tenancy.tenant import Tenant


class ToyWorkload:
    """A tiny deterministic workload for manager tests.

    ``length`` controls execution time: each warp performs ``length``
    memory ops on private pages with a small compute gap.
    """

    def __init__(self, name, length=5, compute=10, pages=8):
        self.name = name
        self.length = length
        self.compute = compute
        self.pages = pages

    def build_streams(self, num_warps, rng):
        streams = []
        for w in range(num_warps):
            ops = [
                WarpOp(self.compute, [((w * self.pages + i) % 64 + 1) << 12])
                for i in range(self.length)
            ]
            streams.append(iter(ops))
        return streams


def small_cfg():
    return GpuConfig.baseline(num_sms=4)


class TestBasicRun:
    def test_single_tenant_completes(self):
        m = MultiTenantManager(small_cfg(), [Tenant(0, ToyWorkload("a"))],
                               warps_per_sm=2)
        result = m.run()
        assert result.tenants[0].completed_executions == 1
        assert result.tenants[0].instructions > 0
        assert result.tenants[0].ipc > 0
        assert result.total_cycles > 0

    def test_two_tenants_both_complete(self):
        m = MultiTenantManager(
            small_cfg(),
            [Tenant(0, ToyWorkload("a")), Tenant(1, ToyWorkload("b"))],
            warps_per_sm=2,
        )
        result = m.run()
        assert all(result.tenants[t].completed_executions >= 1 for t in (0, 1))

    def test_duplicate_tenant_ids_rejected(self):
        with pytest.raises(ValueError):
            MultiTenantManager(
                small_cfg(),
                [Tenant(0, ToyWorkload("a")), Tenant(0, ToyWorkload("b"))],
            )

    def test_no_tenants_rejected(self):
        with pytest.raises(ValueError):
            MultiTenantManager(small_cfg(), [])

    def test_min_executions_validated(self):
        with pytest.raises(ValueError):
            MultiTenantManager(small_cfg(), [Tenant(0, ToyWorkload("a"))],
                               min_executions=0)


class TestRelaunchMethodology:
    def test_fast_tenant_relaunches_until_slow_finishes(self):
        m = MultiTenantManager(
            small_cfg(),
            [Tenant(0, ToyWorkload("fast", length=2)),
             Tenant(1, ToyWorkload("slow", length=60))],
            warps_per_sm=2,
        )
        result = m.run()
        assert result.tenants[1].completed_executions == 1
        assert result.tenants[0].completed_executions > 1

    def test_stats_cover_completed_executions_only(self):
        """The fast tenant's recorded cycles exclude its unfinished tail."""
        m = MultiTenantManager(
            small_cfg(),
            [Tenant(0, ToyWorkload("fast", length=2)),
             Tenant(1, ToyWorkload("slow", length=60))],
            warps_per_sm=2,
        )
        result = m.run()
        fast = result.tenants[0]
        assert fast.cycles <= result.total_cycles
        assert len(fast.executions) == fast.completed_executions
        assert sum(e.instructions for e in fast.executions) == fast.instructions
        assert sum(e.cycles for e in fast.executions) == fast.cycles

    def test_min_executions_runs_more(self):
        m = MultiTenantManager(small_cfg(), [Tenant(0, ToyWorkload("a"))],
                               warps_per_sm=2, min_executions=3)
        result = m.run()
        assert result.tenants[0].completed_executions == 3

    def test_per_execution_misses_drop_once_warm(self):
        m = MultiTenantManager(small_cfg(), [Tenant(0, ToyWorkload("a"))],
                               warps_per_sm=2, min_executions=2)
        result = m.run()
        execs = result.tenants[0].executions
        assert execs[0].l2_tlb_misses > 0       # cold first touch
        assert execs[1].l2_tlb_misses <= execs[0].l2_tlb_misses

    def test_determinism_same_seed(self):
        def run():
            m = MultiTenantManager(
                small_cfg(),
                [Tenant(0, ToyWorkload("a")), Tenant(1, ToyWorkload("b", length=9))],
                warps_per_sm=2, seed=42,
            )
            r = m.run()
            return (r.total_cycles, r.tenants[0].instructions,
                    r.tenants[1].instructions)

        assert run() == run()


class TestResultApi:
    def test_share_stats_flattened(self):
        m = MultiTenantManager(
            small_cfg(),
            [Tenant(0, ToyWorkload("a")), Tenant(1, ToyWorkload("b"))],
            warps_per_sm=2,
        )
        result = m.run()
        assert "pws.walker_share.tenant0" in result.stats
        assert "l2tlb.tlb_share.tenant0" in result.stats

    def test_stat_default(self):
        m = MultiTenantManager(small_cfg(), [Tenant(0, ToyWorkload("a"))],
                               warps_per_sm=2)
        result = m.run()
        assert result.stat("no.such.stat", -1.0) == -1.0

    def test_tenant_ids_sorted(self):
        m = MultiTenantManager(
            small_cfg(),
            [Tenant(1, ToyWorkload("b")), Tenant(0, ToyWorkload("a"))],
            warps_per_sm=2,
        )
        assert m.run().tenant_ids == [0, 1]
