"""Error-path tests for the multi-tenant manager."""

import pytest

from repro.engine.config import GpuConfig
from repro.gpu.warp import WarpOp
from repro.tenancy.manager import MultiTenantManager
from repro.tenancy.tenant import Tenant


class NeverEndingWorkload:
    """Long enough that a tiny max_events budget cannot finish it."""

    name = "endless"

    def build_streams(self, num_warps, rng):
        return [
            iter([WarpOp(1, [(i + 1) << 12]) for i in range(5000)])
            for _ in range(num_warps)
        ]


class EmptyWorkload:
    name = "empty"

    def build_streams(self, num_warps, rng):
        return []


class ZeroOpWorkload:
    """Streams exist but contain no operations: warps retire at once."""

    name = "noop"

    def build_streams(self, num_warps, rng):
        return [iter([]) for _ in range(num_warps)]


def test_max_events_exhaustion_raises_clearly():
    manager = MultiTenantManager(
        GpuConfig.baseline(num_sms=2),
        [Tenant(0, NeverEndingWorkload())],
        warps_per_sm=2, max_events=500,
    )
    with pytest.raises(RuntimeError, match="max_events"):
        manager.run()


def test_workload_with_no_streams_rejected():
    manager = MultiTenantManager(
        GpuConfig.baseline(num_sms=2), [Tenant(0, EmptyWorkload())],
        warps_per_sm=2,
    )
    with pytest.raises(ValueError, match="no warp streams"):
        manager.run()


def test_zero_op_streams_complete_immediately():
    manager = MultiTenantManager(
        GpuConfig.baseline(num_sms=2), [Tenant(0, ZeroOpWorkload())],
        warps_per_sm=2,
    )
    result = manager.run()
    assert result.tenants[0].completed_executions == 1
    assert result.tenants[0].instructions == 0


def test_negative_tenant_id_rejected():
    with pytest.raises(ValueError):
        Tenant(-1, ZeroOpWorkload())
