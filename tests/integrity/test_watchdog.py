"""Forward-progress watchdog: stall detection without false positives."""

import os

import pytest

from repro.engine.config import GpuConfig
from repro.integrity import IntegrityConfig, ProgressStall, ProgressWatchdog
from repro.tenancy.manager import MultiTenantManager
from repro.tenancy.tenant import Tenant
from repro.workloads.suite import benchmark


def _manager(integrity=None, pair=("HS", "MM"), scale=0.04):
    config = GpuConfig.baseline(num_sms=4)
    tenants = [Tenant(i, benchmark(name, scale=scale))
               for i, name in enumerate(pair)]
    return MultiTenantManager(config, tenants, warps_per_sm=2, seed=7,
                              integrity=integrity)


def test_healthy_run_never_stalls():
    result = _manager(IntegrityConfig(watchdog_window=500)).run()
    assert result.tenants[0].completed_executions >= 1
    assert result.tenants[1].completed_executions >= 1


def test_healthy_run_is_byte_identical_under_watchdog():
    plain = _manager().run()
    watched = _manager(IntegrityConfig(watchdog_window=500)).run()
    assert watched.stats == plain.stats
    # The watchdog rides the per-event audit hook, which closes every
    # fold/batch gate (DESIGN.md §12/§14): the watched run fires the
    # canonical per-stage event stream, so its event count matches the
    # fold-disabled plain run while the stats match the default one.
    os.environ["REPRO_FASTPATH"] = "0"
    try:
        canonical = _manager().run()
    finally:
        os.environ.pop("REPRO_FASTPATH", None)
    assert watched.events_fired == canonical.events_fired
    assert canonical.stats == plain.stats


def test_window_must_be_positive():
    manager = _manager()
    with pytest.raises(ValueError):
        ProgressWatchdog(manager, 0)


def test_check_cadence_tracks_window():
    manager = _manager()
    assert ProgressWatchdog(manager, 100).check_every == 25
    assert ProgressWatchdog(manager, 3).check_every == 1
    assert ProgressWatchdog(manager, 1_000_000).check_every == 1024


def _wedge(manager):
    """Turn the first subsystem into a livelock: walks are accepted and
    dispatched but the walker never issues its memory access, so nothing
    completes, while a self-rescheduling heartbeat keeps the clock (and
    event counter) advancing — exactly the wedged-but-alive shape the
    watchdog exists for (a drained queue would stop on its own)."""
    pws = manager.gpu.walk_subsystems()[0]
    for walker in pws.walkers:
        walker._issue_level = lambda *a, **k: None

    def heartbeat():
        manager.sim.after(5, heartbeat)

    manager.sim.after(5, heartbeat)
    return pws


def test_wedged_subsystem_raises_global_stall():
    manager = _manager(IntegrityConfig(watchdog_window=2_000))
    _wedge(manager)
    with pytest.raises(ProgressStall) as excinfo:
        manager.run()
    stall = excinfo.value
    assert stall.window == 2_000
    assert stall.inflight_walks > 0
    assert stall.stalled_tenants  # names who is stuck
    assert "no walk completed" in str(stall)
    # diagnosis fields are JSON-portable for the forensics bundle
    details = stall.details()
    assert details["type"] == "ProgressStall"
    assert details["inflight_walks"] == stall.inflight_walks


def test_wedged_run_stalls_promptly():
    window = 2_000
    manager = _manager(IntegrityConfig(watchdog_window=window))
    _wedge(manager)
    harness = manager._integrity_harness()
    with pytest.raises(ProgressStall):
        with harness:
            manager._run()
    # raised within ~a window of the stall beginning (plus the short
    # productive phase before every warp blocks), not at the
    # event-budget horizon
    assert harness.events_seen < 3 * window


def test_stall_carries_queue_depths_and_busy_walkers():
    manager = _manager(IntegrityConfig(watchdog_window=1_500))
    _wedge(manager)
    with pytest.raises(ProgressStall) as excinfo:
        manager.run()
    stall = excinfo.value
    # wedged walkers hold their requests forever: busy but not completing
    assert sum(stall.busy_walkers.values()) > 0
    assert isinstance(stall.queue_depths, dict)


def test_stall_survives_pickling():
    import pickle

    stall = ProgressStall("wedged", stalled_tenants=[1],
                          queue_depths={1: 4}, busy_walkers={1: 2},
                          window=100, inflight_walks=6, active_warps=3,
                          sim_time=42)
    clone = pickle.loads(pickle.dumps(stall))
    assert clone.stalled_tenants == (1,)
    assert clone.queue_depths == {1: 4}
    assert clone.window == 100
    assert clone.sim_time == 42
    assert "wedged" in str(clone)
