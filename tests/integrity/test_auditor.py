"""Invariant auditor: differential byte-identity, probes, corruption."""

import dataclasses
import os

import pytest

from repro.engine.config import GpuConfig, PolicySpec
from repro.harness.faults import FaultSpec, clear_faults, install_faults
from repro.integrity import (
    Auditor,
    IntegrityConfig,
    InvariantViolation,
    build_auditor,
)
from repro.tenancy.manager import MultiTenantManager
from repro.tenancy.tenant import Tenant
from repro.workloads.suite import benchmark


def _manager(policy="dws", integrity=None, pair=("HS", "MM"), seed=7,
             separate=False):
    config = GpuConfig.baseline(num_sms=4)
    config = dataclasses.replace(
        config, policy=PolicySpec(name=policy),
        separate_l2_tlb=separate, separate_walkers=separate)
    tenants = [Tenant(i, benchmark(name, scale=0.04))
               for i, name in enumerate(pair)]
    return MultiTenantManager(config, tenants, warps_per_sm=2, seed=seed,
                              integrity=integrity)


@pytest.fixture(autouse=True)
def _no_ambient_faults():
    from repro.integrity import clear_install
    clear_faults()
    clear_install()
    yield
    clear_faults()
    clear_install()


# ----------------------------------------------------------------------
# Byte-identical discipline: auditing must never change results
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["baseline", "static", "dws", "dwspp"])
@pytest.mark.parametrize("audit", ["cheap", "full"])
def test_audited_run_is_byte_identical(policy, audit):
    plain = _manager(policy).run()
    audited = _manager(
        policy, integrity=IntegrityConfig(audit=audit, audit_interval=64),
    ).run()
    assert audited.stats == plain.stats
    assert audited.total_cycles == plain.total_cycles
    # The audit hook closes every fold/batch gate (DESIGN.md §12/§14),
    # so the audited run fires the canonical per-stage event stream.
    # ``events_fired`` therefore matches the *fold-disabled* plain run,
    # while every simulated observable above matches the default one.
    os.environ["REPRO_FASTPATH"] = "0"
    try:
        canonical = _manager(policy).run()
    finally:
        os.environ.pop("REPRO_FASTPATH", None)
    assert audited.events_fired == canonical.events_fired
    assert canonical.stats == plain.stats
    for t in plain.tenant_ids:
        assert audited.tenants[t].instructions == plain.tenants[t].instructions
        assert audited.tenants[t].cycles == plain.tenants[t].cycles


def test_off_config_attaches_nothing():
    manager = _manager("dws", integrity=IntegrityConfig(audit="off"))
    assert manager._integrity_harness() is None
    result = manager.run()
    assert manager.sim.audit_hook is None
    assert result.tenants[0].completed_executions >= 1


def test_full_mode_runs_probes_and_transition_checks():
    manager = _manager("dws")
    config = IntegrityConfig(audit="full")
    harness = manager._integrity_harness() or None
    assert harness is None  # no ambient config installed
    from repro.integrity.harness import IntegrityHarness
    with IntegrityHarness(manager, config) as harness:
        manager._run()
    auditor = harness.auditor
    assert auditor is not None
    assert auditor.sweeps > 0
    # full mode sweeps once per event plus per-transition re-checks
    assert auditor.checks_run > auditor.sweeps
    # detached on exit
    assert manager.sim.audit_hook is None
    for pws in manager.gpu.walk_subsystems():
        assert pws.auditor is None


def test_cheap_mode_samples_at_interval():
    manager = _manager("dws")
    from repro.integrity.harness import IntegrityHarness
    with IntegrityHarness(
            manager, IntegrityConfig(audit="cheap", audit_interval=128),
    ) as harness:
        result = manager._run()
    assert harness.auditor.sweeps == result.events_fired // 128


# ----------------------------------------------------------------------
# The auditor catches seeded violations
# ----------------------------------------------------------------------
@pytest.mark.parametrize("target,probe", [
    ("busy", "occupancy"),
    ("walks", "walk_accounting"),
])
def test_seeded_corruption_is_caught(target, probe):
    install_faults([FaultSpec(kind="corrupt", after_events=150,
                              target=target)])
    manager = _manager("dws", integrity=IntegrityConfig(audit="full"))
    with pytest.raises(InvariantViolation) as excinfo:
        manager.run()
    assert probe in excinfo.value.probe
    assert excinfo.value.sim_time is not None
    # typed errors stay catchable through the pre-existing hierarchy
    assert isinstance(excinfo.value, RuntimeError)


def test_cheap_mode_catches_corruption_within_interval():
    install_faults([FaultSpec(kind="corrupt", after_events=10,
                              target="walks")])
    manager = _manager(
        "dws", integrity=IntegrityConfig(audit="cheap", audit_interval=32))
    with pytest.raises(InvariantViolation):
        manager.run()


def test_corruption_without_audit_is_inert():
    # The corrupt fault needs the integrity hook to be applied at all;
    # auditing off means no hook, no corruption, clean run.
    install_faults([FaultSpec(kind="corrupt", after_events=10,
                              target="walks")])
    result = _manager("dws").run()
    assert result.tenants[0].completed_executions >= 1


def test_corruption_label_filtering():
    install_faults([FaultSpec(kind="corrupt", label="other-job",
                              after_events=10, target="walks")])
    manager = _manager("dws", integrity=IntegrityConfig(audit="full"))
    result = manager.run()  # label mismatch: fault never fires
    assert result.tenants[0].completed_executions >= 1


# ----------------------------------------------------------------------
# Probe unit behaviour
# ----------------------------------------------------------------------
def test_register_and_sweep_raise_on_failure():
    auditor = Auditor(level="cheap", interval=1)
    calls = []
    auditor.register("ok", lambda: calls.append("ok") and None)
    auditor.register("bad", lambda: "measured 2, expected 1")
    with pytest.raises(InvariantViolation, match="bad: measured 2"):
        auditor.sweep()
    assert auditor.checks_run == 2


def test_check_component_scopes_to_registered_component():
    auditor = Auditor(level="full")
    target = object()
    hits = []
    auditor.register("scoped", lambda: hits.append(1) and None,
                     component=target)
    auditor.check_component(object())  # unknown component: nothing runs
    assert hits == []
    auditor.check_component(target)
    assert hits == [1]


def test_build_auditor_covers_every_layer():
    manager = _manager("dwspp", separate=True)
    auditor = build_auditor(manager, IntegrityConfig(audit="cheap"))
    names = [name for name, _probe in auditor._probes]
    assert "sim.monotonic_time" in names
    assert "tenancy.accounting" in names
    assert any(n.endswith(".walk_accounting") for n in names)
    assert any(n.endswith(".occupancy") for n in names)
    assert any(n.endswith(".policy") for n in names)
    assert any(n.endswith(".residency") for n in names)
    auditor.sweep()  # a healthy idle manager passes every probe


def test_cli_tables_byte_identical_under_audit(capsys):
    """`--audit full` must not perturb a paper table by one byte."""
    from repro.cli import main

    argv = ["experiment", "fig5", "--pairs", "HS.MM",
            "--scale", "0.03", "--warps", "2"]
    assert main(argv) == 0
    plain = capsys.readouterr().out
    assert main(argv + ["--audit", "full"]) == 0
    audited = capsys.readouterr().out
    assert audited == plain
    assert main(argv + ["--audit", "cheap", "--watchdog-window",
                        "100000"]) == 0
    assert capsys.readouterr().out == plain


def test_probe_detects_hand_broken_busy_count():
    manager = _manager("dws")
    auditor = build_auditor(manager, IntegrityConfig(audit="cheap"))
    pws = manager.gpu.walk_subsystems()[0]
    pws._busy_by_tenant[0] = -1
    with pytest.raises(InvariantViolation, match="negative"):
        auditor.sweep()
