"""Crash forensics: typed errors, bundle round-trips, CLI replay."""

import dataclasses
import json

import pytest

from repro.engine.config import GpuConfig
from repro.engine.simulator import (
    EventBudgetExceeded,
    SimulationError,
    WalkAccountingError,
)
from repro.harness.faults import FaultSpec, clear_faults, install_faults
from repro.integrity import (
    BUNDLE_FORMAT,
    IntegrityConfig,
    InvariantViolation,
    load_bundle,
    replay_bundle,
    write_bundle,
)
from repro.tenancy.manager import MultiTenantManager
from repro.tenancy.tenant import Tenant
from repro.workloads.suite import benchmark


@pytest.fixture(autouse=True)
def _clean_env():
    from repro.integrity import clear_install
    clear_faults()
    clear_install()
    yield
    clear_faults()
    clear_install()


def _manager(integrity=None, scale=0.04, max_events=100_000_000):
    config = GpuConfig.baseline(num_sms=4)
    tenants = [Tenant(i, benchmark(name, scale=scale))
               for i, name in enumerate(("HS", "MM"))]
    return MultiTenantManager(config, tenants, warps_per_sm=2, seed=7,
                              max_events=max_events, integrity=integrity)


# ----------------------------------------------------------------------
# Typed error hierarchy (satellite a/b)
# ----------------------------------------------------------------------
def test_negative_busy_count_raises_typed_error():
    manager = _manager()
    pws = manager.gpu.walk_subsystems()[0]
    with pytest.raises(WalkAccountingError) as excinfo:
        pws._update_busy(0, -1)
    error = excinfo.value
    assert error.tenant_id == 0
    assert error.sim_time == manager.sim.now
    assert isinstance(error, SimulationError)
    assert isinstance(error, RuntimeError)  # legacy handlers still match
    details = error.details()
    assert details["type"] == "WalkAccountingError"
    assert details["tenant_id"] == 0


def test_event_budget_error_keeps_legacy_message():
    manager = _manager(scale=0.5, max_events=200)
    # pre-existing callers match on RuntimeError + "max_events"
    with pytest.raises(RuntimeError, match="max_events") as excinfo:
        manager.run()
    assert isinstance(excinfo.value, EventBudgetExceeded)
    assert excinfo.value.context["incomplete_tenants"]


def test_simulation_error_pickles_with_fields():
    import pickle

    error = WalkAccountingError("busy count negative", tenant_id=3,
                                walker_id=2, sim_time=99, extra="x")
    clone = pickle.loads(pickle.dumps(error))
    assert clone.tenant_id == 3
    assert clone.walker_id == 2
    assert clone.sim_time == 99
    assert clone.context == {"extra": "x"}


# ----------------------------------------------------------------------
# Bundle round trip (satellite d)
# ----------------------------------------------------------------------
def test_bundle_write_load_round_trip(tmp_path):
    config = GpuConfig.baseline(num_sms=4)
    error = InvariantViolation("tenant 0: off by one", probe="pws.occupancy",
                               sim_time=123)
    path = write_bundle(
        tmp_path, error=error, names=("HS", "MM"), config=config,
        scale=0.04, warps_per_sm=2, seed=7, max_events=1000,
        integrity=IntegrityConfig(audit="full"),
        stats={"pws.walks.tenant0": 5.0}, sim_now=123, events_fired=456,
        label="HS.MM/dws")
    assert path.name.endswith(".forensics.json")
    bundle = load_bundle(path)
    assert bundle["format"] == BUNDLE_FORMAT
    assert bundle["error"]["probe"] == "pws.occupancy"
    assert bundle["job"]["names"] == ["HS", "MM"]
    assert bundle["job"]["seed"] == 7
    assert bundle["integrity"]["audit"] == "full"
    assert str(path) in bundle["command"]
    # the config survives the dict round trip exactly
    from repro.engine.config import config_from_dict
    assert config_from_dict(bundle["config"]) == config


def test_load_bundle_rejects_garbage(tmp_path):
    path = tmp_path / "x.forensics.json"
    path.write_text(json.dumps({"format": 999}))
    with pytest.raises(ValueError, match="not a format"):
        load_bundle(path)
    path.write_text(json.dumps({"format": BUNDLE_FORMAT}))
    with pytest.raises(ValueError, match="missing"):
        load_bundle(path)


def test_crash_capture_and_replay_reproduces(tmp_path):
    install_faults([FaultSpec(kind="corrupt", after_events=150,
                              target="busy")])
    manager = _manager(IntegrityConfig(audit="full",
                                       forensics_dir=str(tmp_path)))
    with pytest.raises(InvariantViolation) as excinfo:
        manager.run()
    bundle_path = excinfo.value.bundle_path
    assert bundle_path and str(tmp_path) in bundle_path
    bundle = load_bundle(bundle_path)
    assert bundle["environment"]["REPRO_FAULTS"]  # plan travels along
    assert bundle["stats"]  # a snapshot at death was captured
    assert bundle["sim"]["events_fired"] > 0

    # The embedded command's replay must reproduce the exact failure —
    # even with the fault plan cleared from this process.
    clear_faults()
    outcome = replay_bundle(bundle_path)
    assert outcome.reproduced
    assert type(outcome.error).__name__ == "InvariantViolation"
    # deterministic to the message: same probe, same counts, same cycle
    assert str(outcome.error) == str(excinfo.value)


def test_replay_does_not_mint_nested_bundles(tmp_path):
    install_faults([FaultSpec(kind="corrupt", after_events=150,
                              target="walks")])
    manager = _manager(IntegrityConfig(audit="full",
                                       forensics_dir=str(tmp_path)))
    with pytest.raises(InvariantViolation) as excinfo:
        manager.run()
    clear_faults()
    before = sorted(tmp_path.glob("*.forensics.json"))
    assert len(before) == 1
    outcome = replay_bundle(before[0])
    assert outcome.reproduced
    assert sorted(tmp_path.glob("*.forensics.json")) == before
    assert getattr(excinfo.value, "bundle_path", None) == str(before[0])


def test_bundle_ring_buffer_holds_recent_events(tmp_path):
    install_faults([FaultSpec(kind="corrupt", after_events=400,
                              target="walks")])
    manager = _manager(IntegrityConfig(audit="full",
                                       forensics_dir=str(tmp_path),
                                       ring_capacity=64))
    with pytest.raises(InvariantViolation) as excinfo:
        manager.run()
    bundle = load_bundle(excinfo.value.bundle_path)
    events = bundle["recent_events"]
    assert 0 < len(events) <= 64
    times = [e["time"] for e in events]
    assert times == sorted(times)
    # tracer attached by the harness was detached again afterwards
    for pws in manager.gpu.walk_subsystems():
        assert pws.tracer is None


# ----------------------------------------------------------------------
# CLI (satellite: --audit / --forensics-dir / replay command)
# ----------------------------------------------------------------------
def test_cli_flags_capture_and_replay(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    monkeypatch.setenv(
        "REPRO_FAULTS",
        json.dumps([dataclasses.asdict(
            FaultSpec(kind="corrupt", after_events=300, target="walks"))]))
    code = main(["run", "HS.MM", "--scale", "0.04", "--warps", "2",
                 "--audit", "full", "--forensics-dir", str(tmp_path)])
    assert code == 1
    err = capsys.readouterr().err
    assert "InvariantViolation" in err
    assert "forensics bundle:" in err
    bundles = list(tmp_path.glob("*.forensics.json"))
    assert len(bundles) == 1

    monkeypatch.delenv("REPRO_FAULTS")
    code = main(["replay", str(bundles[0])])
    out = capsys.readouterr().out
    assert code == 0
    assert "reproduced: InvariantViolation" in out


def test_cli_replay_exit_3_when_not_reproducing(tmp_path, capsys):
    # A bundle recording a failure that a clean rerun does not hit.
    config = GpuConfig.baseline(num_sms=4)
    error = InvariantViolation("phantom", probe="pws.occupancy")
    path = write_bundle(tmp_path, error=error, names=("HS", "MM"),
                        config=config, scale=0.04, warps_per_sm=2, seed=7,
                        max_events=100_000_000)
    from repro.cli import main
    assert main(["replay", str(path)]) == 3
    assert "did not reproduce" in capsys.readouterr().err


def test_cli_restores_prior_integrity_env(monkeypatch):
    from repro.cli import main
    from repro.integrity import INTEGRITY_ENV

    monkeypatch.setenv(INTEGRITY_ENV, "sentinel")
    code = main(["run", "HS.MM", "--scale", "0.03", "--warps", "2",
                 "--audit", "cheap"])
    assert code == 0
    import os
    assert os.environ[INTEGRITY_ENV] == "sentinel"
