"""Unit tests for the DRAM channel model."""

from repro.engine.config import DramConfig
from repro.engine.simulator import Simulator
from repro.mem.dram import Dram


def make_dram(channels=2, latency=100, occ=4):
    sim = Simulator()
    dram = Dram(sim, DramConfig(channels=channels, access_latency=latency,
                                cycles_per_access=occ))
    return sim, dram


def test_single_access_completes_after_latency():
    sim, dram = make_dram()
    done = []
    dram.access(0, False, lambda: done.append(sim.now))
    sim.drain()
    assert done == [100]


def test_same_channel_accesses_serialize_by_occupancy():
    sim, dram = make_dram(channels=1, latency=100, occ=10)
    done = []
    dram.access(0, False, lambda: done.append(sim.now))
    dram.access(0, False, lambda: done.append(sim.now))
    dram.access(0, False, lambda: done.append(sim.now))
    sim.drain()
    assert done == [100, 110, 120]


def test_different_channels_proceed_in_parallel():
    sim, dram = make_dram(channels=2, latency=100, occ=10)
    done = []
    dram.access(0, False, lambda: done.append(sim.now))      # channel 0
    dram.access(128, False, lambda: done.append(sim.now))    # channel 1
    sim.drain()
    assert done == [100, 100]


def test_channel_mapping_is_line_interleaved():
    sim, dram = make_dram(channels=4)
    assert dram.channel_of(0) == 0
    assert dram.channel_of(128) == 1
    assert dram.channel_of(128 * 4) == 0
    assert dram.channel_of(130) == 1  # within-line offsets map identically


def test_stats_recorded():
    sim, dram = make_dram(channels=1, occ=10)
    for _ in range(3):
        dram.access(0, False, lambda: None)
    sim.drain()
    assert sim.stats.counter("dram.accesses").value == 3
    # second and third access waited 10 and 20 cycles
    assert sim.stats.accumulator("dram.queue_delay").total == 30
