"""Unit and property tests for the non-blocking cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.config import CacheConfig
from repro.engine.simulator import Simulator
from repro.mem.cache import Cache


class InstantMemory:
    """A lower level that answers after a fixed latency and records traffic."""

    def __init__(self, sim, latency=50):
        self.sim = sim
        self.latency = latency
        self.reads = []
        self.writes = []

    def access(self, addr, is_write, on_done, tenant_id=0):
        (self.writes if is_write else self.reads).append(addr)
        self.sim.after(self.latency, on_done)


def make_cache(size=1024, line=64, assoc=2, mshrs=4, hit_latency=3, lower_latency=50):
    sim = Simulator()
    lower = InstantMemory(sim, lower_latency)
    cache = Cache(
        sim,
        CacheConfig(size_bytes=size, line_bytes=line, associativity=assoc,
                    hit_latency=hit_latency, mshr_entries=mshrs),
        lower, name="c",
    )
    return sim, cache, lower


def run_access(sim, cache, addr, is_write=False):
    done = []
    cache.access(addr, is_write, lambda: done.append(sim.now))
    sim.drain()
    return done[0]


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        sim, cache, lower = make_cache()
        t_miss = run_access(sim, cache, 0x100)
        assert t_miss >= 50  # went to lower level
        t_hit = run_access(sim, cache, 0x100) - t_miss
        assert t_hit == 3  # hit latency only
        assert sim.stats.counter("c.hits").value == 1
        assert sim.stats.counter("c.misses").value == 1

    def test_same_line_different_offset_hits(self):
        sim, cache, lower = make_cache(line=64)
        run_access(sim, cache, 0x100)
        run_access(sim, cache, 0x100 + 63)
        assert sim.stats.counter("c.hits").value == 1

    def test_miss_fetches_line_address_from_lower(self):
        sim, cache, lower = make_cache(line=64)
        run_access(sim, cache, 0x1A7)
        assert lower.reads == [0x180]  # aligned to line


class TestMshr:
    def test_concurrent_same_line_misses_merge(self):
        sim, cache, lower = make_cache()
        done = []
        cache.access(0x200, False, lambda: done.append("a"))
        cache.access(0x210, False, lambda: done.append("b"))  # same line
        sim.drain()
        assert sorted(done) == ["a", "b"]
        assert len(lower.reads) == 1
        assert sim.stats.counter("c.mshr_merges").value == 1

    def test_mshr_full_applies_backpressure(self):
        sim, cache, lower = make_cache(mshrs=2, line=64)
        done = []
        for i in range(4):  # 4 distinct lines, only 2 MSHRs
            cache.access(i * 64, False, lambda i=i: done.append(i))
        assert sim.stats.counter("c.mshr_stalls").value == 2
        sim.drain()
        assert sorted(done) == [0, 1, 2, 3]  # everything eventually completes
        assert len(lower.reads) == 4

    def test_outstanding_misses_tracked(self):
        sim, cache, lower = make_cache(mshrs=4, line=64)
        for i in range(3):
            cache.access(i * 64, False, lambda: None)
        assert cache.outstanding_misses == 3
        sim.drain()
        assert cache.outstanding_misses == 0


class TestEvictionWriteback:
    def test_lru_eviction_within_set(self):
        # direct-mapped-like: 1 set, 2 ways
        sim, cache, lower = make_cache(size=128, line=64, assoc=2)
        run_access(sim, cache, 0 * 64)
        run_access(sim, cache, 1 * 64)
        run_access(sim, cache, 0 * 64)   # touch line 0 -> line 1 is LRU
        run_access(sim, cache, 2 * 64)   # evicts line 1
        assert cache.contains(0 * 64)
        assert not cache.contains(1 * 64)
        assert cache.contains(2 * 64)

    def test_dirty_eviction_writes_back(self):
        sim, cache, lower = make_cache(size=128, line=64, assoc=2)
        run_access(sim, cache, 0 * 64, is_write=True)
        run_access(sim, cache, 1 * 64)
        run_access(sim, cache, 2 * 64)  # evicts dirty line 0
        assert 0 in lower.writes
        assert sim.stats.counter("c.writebacks").value == 1

    def test_clean_eviction_no_writeback(self):
        sim, cache, lower = make_cache(size=128, line=64, assoc=2)
        for i in range(3):
            run_access(sim, cache, i * 64)
        assert lower.writes == []


class TestCapacityInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=120))
    def test_never_exceeds_capacity_or_associativity(self, line_ids):
        sim, cache, lower = make_cache(size=512, line=64, assoc=2)  # 4 sets
        for lid in line_ids:
            cache.access(lid * 64, False, lambda: None)
            sim.drain()
        assert cache.resident_lines() <= 8
        for s in cache._sets:
            assert len(s) <= 2

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 31), min_size=1, max_size=60),
           st.integers(1, 8))
    def test_all_accesses_complete(self, line_ids, mshrs):
        sim, cache, lower = make_cache(size=512, line=64, assoc=2, mshrs=mshrs)
        done = []
        for lid in line_ids:
            cache.access(lid * 64, False, lambda: done.append(1))
        sim.drain()
        assert len(done) == len(line_ids)


def test_banked_cache_serializes_same_bank():
    sim = Simulator()
    lower = InstantMemory(sim, latency=0)
    cache = Cache(
        sim,
        CacheConfig(size_bytes=4096, line_bytes=64, associativity=2,
                    hit_latency=5, mshr_entries=8, banks=2),
        lower, name="b", bank_cycles=10,
    )
    # warm two lines in the same bank (line ids 0 and 2 -> bank 0)
    done = []
    cache.access(0 * 64, False, lambda: done.append(1))
    cache.access(2 * 64, False, lambda: done.append(1))
    sim.drain()
    # let the warmup's bank occupancy fully drain before measuring
    sim.at(sim.now + 100, lambda: None)
    sim.drain()
    t0 = sim.now
    hits = []
    cache.access(0 * 64, False, lambda: hits.append(sim.now - t0))
    cache.access(2 * 64, False, lambda: hits.append(sim.now - t0))
    sim.drain()
    assert hits[0] == 5           # first hit: pure hit latency
    assert hits[1] == 15          # second waits out bank occupancy
