"""Tests for the SM-to-L2 interconnect model."""

import pytest

from repro.engine.simulator import Simulator
from repro.mem.interconnect import Interconnect


class InstantLower:
    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def access(self, addr, is_write, on_done, tenant_id=0):
        self.arrivals.append((self.sim.now, addr))
        on_done()


def make(latency=20, ports=2, occupancy=4):
    sim = Simulator()
    lower = InstantLower(sim)
    noc = Interconnect(sim, lower, latency=latency, ports=ports,
                       cycles_per_transfer=occupancy, line_bytes=128)
    return sim, noc, lower


def test_fixed_latency_applied():
    sim, noc, lower = make(latency=20)
    done = []
    noc.access(0, False, lambda: done.append(sim.now))
    sim.drain()
    assert lower.arrivals[0][0] == 20
    assert done == [20]


def test_same_port_serializes_by_occupancy():
    sim, noc, lower = make(latency=10, ports=1, occupancy=5)
    for _ in range(3):
        noc.access(0, False, lambda: None)
    sim.drain()
    assert [t for t, _ in lower.arrivals] == [10, 15, 20]


def test_different_ports_flow_in_parallel():
    sim, noc, lower = make(latency=10, ports=2, occupancy=5)
    noc.access(0, False, lambda: None)       # port 0
    noc.access(128, False, lambda: None)     # port 1
    sim.drain()
    assert [t for t, _ in lower.arrivals] == [10, 10]


def test_port_mapping_line_interleaved():
    sim, noc, lower = make(ports=4)
    assert noc.port_of(0) == 0
    assert noc.port_of(128) == 1
    assert noc.port_of(128 * 4) == 0
    assert noc.port_of(130) == 1


def test_stats_recorded():
    sim, noc, lower = make(ports=1, occupancy=10)
    for _ in range(2):
        noc.access(0, False, lambda: None)
    sim.drain()
    assert sim.stats.counter("noc.transfers").value == 2
    assert sim.stats.accumulator("noc.queue_delay").total == 10


def test_invalid_parameters_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Interconnect(sim, None, latency=-1)
    with pytest.raises(ValueError):
        Interconnect(sim, None, latency=0, ports=0)
