"""``probe_fast`` equivalence: the side-effect-complete hit probes used
by the latency-folding path must leave the component in exactly the
state the ordinary event-path access would, and report the same
completion time."""

from repro.engine.config import CacheConfig, TlbConfig
from repro.engine.simulator import Simulator
from repro.mem.cache import Cache
from repro.vm.tlb import Tlb


class InstantMemory:
    def __init__(self, sim, latency=50):
        self.sim = sim
        self.latency = latency

    def access(self, addr, is_write, on_done, tenant_id=0):
        self.sim.after(self.latency, on_done)


def make_cache(**overrides):
    sim = Simulator()
    params = dict(size_bytes=1024, line_bytes=64, associativity=2,
                  hit_latency=3, mshr_entries=4, banks=2)
    params.update(overrides)
    cache = Cache(sim, CacheConfig(**params), InstantMemory(sim), name="c")
    return sim, cache


def warm(sim, cache, addrs):
    for addr in addrs:
        cache.access(addr, False, lambda: None)
    sim.drain()


def snapshot(cache):
    return (
        [dict(s) for s in cache._sets],
        list(cache._bank_free),
        dict(cache._mshrs),
        cache.sim.stats.counter("c.hits").value,
        cache.sim.stats.counter("c.misses").value,
    )


class TestCacheProbeFast:
    def test_hit_matches_access_completion_and_state(self):
        """Probe a warm line via probe_fast on one cache and via
        access() on an identically warmed twin: same completion cycle,
        same end state."""
        sim_a, fast = make_cache()
        sim_b, slow = make_cache()
        warm(sim_a, fast, [0x100, 0x180])
        warm(sim_b, slow, [0x100, 0x180])
        at = sim_a.now = sim_b.now = max(sim_a.now, sim_b.now)

        done = fast.probe_fast(0x100, False, at)
        completed = []
        slow.access(0x100, False, lambda: completed.append(sim_b.now))
        sim_b.drain()
        assert done == completed[0]
        # The hit tick is deferred to the probe cycle (it must fire or
        # drop exactly with the event-path probe across a stop); drain
        # so both sides have counted.
        sim_a.drain()
        assert snapshot(fast) == snapshot(slow)

    def test_write_probe_marks_dirty_and_touches_lru(self):
        sim, cache = make_cache()
        warm(sim, cache, [0x100])
        line = 0x100 // 64
        cache_set = cache._sets[line % cache._num_sets]
        assert cache_set[line] is False
        done = cache.probe_fast(0x100, True, sim.now)
        assert done >= sim.now + 3
        assert cache_set[line] is True
        assert next(reversed(cache_set)) == line  # MRU position

    def test_miss_returns_minus_one_and_touches_nothing(self):
        sim, cache = make_cache()
        warm(sim, cache, [0x100])
        before = snapshot(cache)
        assert cache.probe_fast(0x4000, False, sim.now) == -1
        assert snapshot(cache) == before

    def test_bank_reservation_serializes_successive_probes(self):
        """Two fast probes of lines on the same bank at one cycle must
        stack their bank occupancy exactly like two queued accesses."""
        sim, cache = make_cache(banks=1)
        warm(sim, cache, [0x100, 0x180])
        at = sim.now
        first = cache.probe_fast(0x100, False, at)
        second = cache.probe_fast(0x180, False, at)
        assert second == first + cache.bank_cycles

    def test_fast_ready_tracks_mshrs_and_overflow(self):
        sim, cache = make_cache()
        assert cache.fast_ready()
        cache.access(0x2000, False, lambda: None)  # outstanding miss
        assert not cache.fast_ready()
        sim.drain()
        assert cache.fast_ready()


class TestTlbProbeFast:
    @staticmethod
    def make_tlb():
        sim = Simulator()
        tlb = Tlb(sim, TlbConfig(entries=8, associativity=2, hit_latency=2,
                                 mshr_entries=8), name="t")
        return sim, tlb

    def test_hit_returns_latency_with_lookup_side_effects(self):
        sim, tlb = self.make_tlb()
        tlb.insert(0, 7, 42)
        assert tlb.probe_fast(0, 7) == 2
        assert sim.stats.counter("t.lookups").value == 1
        assert sim.stats.counter("t.hits").value == 1
        assert sim.stats.counter("t.misses").value == 0

    def test_miss_counts_like_lookup(self):
        sim, tlb = self.make_tlb()
        assert tlb.probe_fast(0, 7) == -1
        assert sim.stats.counter("t.lookups").value == 1
        assert sim.stats.counter("t.misses").value == 1

    def test_probe_and_lookup_agree_on_state(self):
        """Interleaving probe_fast and lookup must leave identical LRU
        state to lookups alone — probe_fast *is* a lookup."""
        sim_a, fast = self.make_tlb()
        sim_b, slow = self.make_tlb()
        for tlb in (fast, slow):
            tlb.insert(0, 1, 11)
            tlb.insert(0, 3, 33)
        fast.probe_fast(0, 1)
        slow.lookup(0, 1)
        # next insert into the same set evicts the same victim
        fast.insert(0, 5, 55)
        slow.insert(0, 5, 55)
        assert [dict(s) for s in fast._sets] == [dict(s) for s in slow._sets]
