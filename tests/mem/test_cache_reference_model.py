"""Reference-model property test: cache contents against an LRU oracle.

Random single-outstanding access sequences (each drained before the
next) must leave the real cache with exactly the lines an ideal LRU
set-associative cache would hold, and produce the same hit/miss
sequence.  Concurrency behaviour (MSHR merging etc.) is covered
elsewhere; this pins down the replacement logic itself.
"""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.config import CacheConfig
from repro.engine.simulator import Simulator
from repro.mem.cache import Cache

NUM_SETS = 4
ASSOC = 2
LINE = 64


class ReferenceCache:
    def __init__(self):
        self.sets = [OrderedDict() for _ in range(NUM_SETS)]

    def access(self, line):
        s = self.sets[line % NUM_SETS]
        if line in s:
            s.move_to_end(line)
            return True
        if len(s) >= ASSOC:
            s.popitem(last=False)
        s[line] = True
        return False

    def contains(self, line):
        return line in self.sets[line % NUM_SETS]


class Backing:
    def __init__(self, sim):
        self.sim = sim

    def access(self, addr, is_write, on_done, tenant_id=0):
        self.sim.after(10, on_done)


@settings(max_examples=60, deadline=None)
@given(lines=st.lists(st.integers(0, 31), min_size=1, max_size=200))
def test_cache_matches_lru_reference(lines):
    sim = Simulator()
    cache = Cache(
        sim,
        CacheConfig(size_bytes=NUM_SETS * ASSOC * LINE, line_bytes=LINE,
                    associativity=ASSOC, hit_latency=1, mshr_entries=4),
        Backing(sim), name="c",
    )
    ref = ReferenceCache()
    hits_real = sim.stats.counter("c.hits")
    expected_hits = 0
    for line in lines:
        cache.access(line * LINE, False, lambda: None)
        sim.drain()
        if ref.access(line):
            expected_hits += 1
        assert hits_real.value == expected_hits
    for line in range(32):
        assert cache.contains(line * LINE) == ref.contains(line)
