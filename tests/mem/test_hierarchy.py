"""Integration tests for the assembled memory hierarchy."""

from repro.engine.config import GpuConfig
from repro.engine.simulator import Simulator
from repro.mem.hierarchy import MemoryHierarchy


def make_hierarchy(num_sms=2):
    sim = Simulator()
    cfg = GpuConfig.baseline(num_sms=num_sms)
    return sim, MemoryHierarchy(sim, cfg), cfg


def test_one_l1_per_sm():
    sim, mh, cfg = make_hierarchy(num_sms=4)
    assert len(mh.l1s) == 4


def test_data_access_fills_l1_and_l2():
    sim, mh, cfg = make_hierarchy()
    done = []
    mh.data_access(0, 0x4000, False, lambda: done.append(sim.now))
    sim.drain()
    assert done and done[0] > cfg.dram.access_latency  # went all the way down
    assert mh.l1s[0].contains(0x4000)
    assert mh.l2.contains(0x4000)


def test_second_sm_misses_l1_hits_l2():
    sim, mh, cfg = make_hierarchy()
    mh.data_access(0, 0x4000, False, lambda: None)
    sim.drain()
    dram_before = sim.stats.counter("dram.accesses").value
    mh.data_access(1, 0x4000, False, lambda: None)
    sim.drain()
    assert sim.stats.counter("dram.accesses").value == dram_before  # L2 hit


def test_walker_access_bypasses_l1():
    sim, mh, cfg = make_hierarchy()
    done = []
    mh.walker_access(0x8000, lambda: done.append(sim.now))
    sim.drain()
    assert done
    assert mh.l2.contains(0x8000)
    assert not mh.l1s[0].contains(0x8000)


def test_walker_hits_l2_after_data_fill():
    sim, mh, cfg = make_hierarchy()
    mh.data_access(0, 0xA000, False, lambda: None)
    sim.drain()
    t0 = sim.now
    done = []
    mh.walker_access(0xA000, lambda: done.append(sim.now - t0))
    sim.drain()
    # L2 hit: no DRAM latency involved
    assert done[0] < cfg.dram.access_latency


def test_interconnect_delay_applies_to_l1_miss_path():
    sim, mh, cfg = make_hierarchy()
    done = []
    mh.data_access(0, 0xC000, False, lambda: done.append(sim.now))
    sim.drain()
    assert done[0] >= (cfg.sm.l1_cache.hit_latency + cfg.interconnect_latency
                       + cfg.l2_cache.hit_latency + cfg.dram.access_latency)
