"""Tests for the physical frame allocator."""

import pytest

from repro.mem.frames import FrameAllocator, OutOfMemoryError


def test_sequential_allocation():
    fa = FrameAllocator(total_frames=10)
    assert fa.allocate() == 0
    assert fa.allocate(count=3) == 1
    assert fa.allocate() == 4
    assert fa.allocated_frames == 5


def test_out_of_memory_raises():
    fa = FrameAllocator(total_frames=2)
    fa.allocate(count=2)
    with pytest.raises(OutOfMemoryError):
        fa.allocate()


def test_owner_accounting():
    fa = FrameAllocator(total_frames=100)
    fa.allocate(owner="tenant0", count=5)
    fa.allocate(owner="tenant1", count=7)
    fa.allocate(owner="tenant0")
    assert fa.allocated_to("tenant0") == 6
    assert fa.allocated_to("tenant1") == 7
    assert fa.allocated_to("nobody") == 0


def test_frame_to_addr_uses_frame_bytes():
    fa = FrameAllocator(total_frames=10, frame_bytes=65536)
    f = fa.allocate()
    g = fa.allocate()
    assert fa.frame_to_addr(f) == 0
    assert fa.frame_to_addr(g) == 65536


def test_invalid_args_rejected():
    with pytest.raises(ValueError):
        FrameAllocator(total_frames=0)
    with pytest.raises(ValueError):
        FrameAllocator(total_frames=1).allocate(count=0)
