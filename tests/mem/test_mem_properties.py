"""Property-based tests for the memory substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.config import CacheConfig, DramConfig
from repro.engine.simulator import Simulator
from repro.mem.cache import Cache
from repro.mem.dram import Dram


class RecordingMemory:
    """Lower level answering after a fixed latency, recording order."""

    def __init__(self, sim, latency=20):
        self.sim = sim
        self.latency = latency
        self.reads = []

    def access(self, addr, is_write, on_done, tenant_id=0):
        if not is_write:
            self.reads.append(addr)
        self.sim.after(self.latency, on_done)


@settings(max_examples=40, deadline=None)
@given(
    addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=80),
    assoc=st.sampled_from([1, 2, 4]),
    mshrs=st.integers(1, 8),
)
def test_cache_completion_and_capacity(addrs, assoc, mshrs):
    """Every access completes exactly once; capacity never exceeded."""
    sim = Simulator()
    lower = RecordingMemory(sim)
    cache = Cache(
        sim,
        CacheConfig(size_bytes=64 * 8 * assoc, line_bytes=64,
                    associativity=assoc, hit_latency=2, mshr_entries=mshrs),
        lower, name="c",
    )
    done = []
    for addr in addrs:
        cache.access(addr, False, lambda a=addr: done.append(a))
    sim.drain()
    assert sorted(done) == sorted(addrs)
    assert cache.resident_lines() <= 8 * assoc
    # a line is fetched from below at most once while it stays resident,
    # so fetches never exceed the number of accesses
    assert len(lower.reads) <= len(addrs)


@settings(max_examples=40, deadline=None)
@given(
    addrs=st.lists(st.integers(0, 1 << 14), min_size=1, max_size=60),
    writes=st.lists(st.booleans(), min_size=60, max_size=60),
)
def test_cache_writeback_only_for_dirty_lines(addrs, writes):
    sim = Simulator()
    lower = RecordingMemory(sim)
    written = []
    original_access = lower.access

    def spy(addr, is_write, on_done, tenant_id=0):
        if is_write:
            written.append(addr)
        original_access(addr, is_write, on_done, tenant_id)

    lower.access = spy
    cache = Cache(
        sim,
        CacheConfig(size_bytes=256, line_bytes=64, associativity=2,
                    hit_latency=1, mshr_entries=4),
        lower, name="c",
    )
    any_write = False
    for addr, is_write in zip(addrs, writes):
        any_write = any_write or is_write
        cache.access(addr, is_write, lambda: None)
        sim.drain()
    if not any_write:
        assert written == []  # clean evictions never write back


@settings(max_examples=40, deadline=None)
@given(
    addrs=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=50),
    channels=st.sampled_from([1, 2, 4, 16]),
)
def test_dram_completions_ordered_per_channel(addrs, channels):
    """Per channel, completions are FIFO and spaced by the occupancy."""
    sim = Simulator()
    dram = Dram(sim, DramConfig(channels=channels, access_latency=100,
                                cycles_per_access=7))
    completions = []
    for addr in addrs:
        dram.access(addr, False,
                    lambda a=addr: completions.append((dram.channel_of(a),
                                                       sim.now)))
    sim.drain()
    assert len(completions) == len(addrs)
    per_channel = {}
    for channel, t in completions:
        per_channel.setdefault(channel, []).append(t)
    for times in per_channel.values():
        assert times == sorted(times)
        for first, second in zip(times, times[1:]):
            assert second - first >= 7  # bandwidth occupancy respected


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 1 << 18), min_size=2, max_size=40))
def test_dram_latency_lower_bound(addrs):
    sim = Simulator()
    dram = Dram(sim, DramConfig(channels=4, access_latency=100,
                                cycles_per_access=4))
    finish = []
    for addr in addrs:
        dram.access(addr, False, lambda: finish.append(sim.now))
    sim.drain()
    assert all(t >= 100 for t in finish)
