"""The README's public API surface: imports and the documented flow."""

import repro
from repro import (
    DwsPlusParams,
    GpuConfig,
    MultiTenantManager,
    PolicySpec,
    RunResult,
    Session,
    Tenant,
    WORKLOAD_PAIRS,
    benchmark,
)


def test_version_string():
    assert repro.__version__ == "1.0.0"


def test_all_names_importable():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_readme_quickstart_flow():
    """The exact flow the README shows, at tiny scale."""
    from repro.metrics import interleaving_of, total_ipc

    config = GpuConfig.baseline(num_sms=4).with_policy("dws")
    tenants = [Tenant(0, benchmark("GUPS", scale=0.05)),
               Tenant(1, benchmark("JPEG", scale=0.05))]
    result = MultiTenantManager(config, tenants, warps_per_sm=2).run()
    assert isinstance(result, RunResult)
    assert total_ipc(result) > 0
    assert interleaving_of(result, 1) >= 0


def test_workload_pairs_export():
    assert len(WORKLOAD_PAIRS) == 45
    assert "GUPS.SAD" in WORKLOAD_PAIRS


def test_policyspec_and_params_compose():
    spec = PolicySpec(name="dwspp", params={"params": DwsPlusParams()})
    cfg = GpuConfig.baseline()
    assert cfg.with_policy("dwspp").policy.name == "dwspp"
    assert spec.name == "dwspp"


def test_session_export_is_harness_session():
    from repro.harness.runner import Session as HarnessSession
    assert Session is HarnessSession
