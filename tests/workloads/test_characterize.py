"""Characterization tests: the models land in their Table II bands.

These run real (scaled-down) stand-alone simulations, so they are the
slowest unit tests in the suite; one representative per band runs by
default and the full 13-benchmark sweep is marked slow.
"""

import pytest

from repro.engine.config import GpuConfig
from repro.workloads import benchmark, benchmark_names
from repro.workloads.characterize import band_of, characterize
from repro.workloads.suite import BENCHMARKS

SMALL_SCALE = 0.5  # keep test-suite runtime in check


class TestBandOf:
    def test_boundaries(self):
        assert band_of(0) == "L"
        assert band_of(24.9) == "L"
        assert band_of(25.1) == "M"
        assert band_of(79.9) == "M"
        assert band_of(80.1) == "H"


@pytest.mark.parametrize("name", ["HS", "3DS", "GUPS"])
def test_representative_benchmark_lands_in_its_band(name):
    c = characterize(benchmark(name, scale=SMALL_SCALE), warps_per_sm=3)
    assert c.band == BENCHMARKS[name].category, (
        f"{name}: measured MPMI {c.mpmi:.1f} -> band {c.band}, "
        f"expected {BENCHMARKS[name].category}"
    )


def test_warm_mpmi_below_cold():
    c = characterize(benchmark("HS", scale=SMALL_SCALE), warps_per_sm=3)
    assert c.mpmi <= c.cold_mpmi


def test_heavy_orders_of_magnitude_above_light():
    light = characterize(benchmark("MM", scale=SMALL_SCALE), warps_per_sm=3)
    heavy = characterize(benchmark("QTC", scale=SMALL_SCALE), warps_per_sm=3)
    assert heavy.mpmi > 100 * max(light.mpmi, 1.0)


@pytest.mark.slow
@pytest.mark.parametrize("name", benchmark_names())
def test_full_suite_banding(name):
    c = characterize(benchmark(name), warps_per_sm=4)
    assert c.band == BENCHMARKS[name].category, (
        f"{name}: measured MPMI {c.mpmi:.1f}, expected band "
        f"{BENCHMARKS[name].category}"
    )
