"""Trace memoization: bit-exact replay, strict key isolation, LRU bound."""

import pytest

from repro.engine.rng import DeterministicRng
from repro.workloads.base import MemoizedWorkload, TraceMemo
from repro.workloads.suite import benchmark

SCALE = 0.05
WARPS = 4


def ops_of(workload, num_warps, rng):
    # WarpOp compares by identity; repr exposes every field, so equal
    # reprs mean equal op sequences.
    return [tuple(repr(op) for op in stream) for stream in
            workload.build_streams(num_warps, rng)]


class TestBitExactness:
    def test_memoized_streams_equal_fresh_streams(self):
        memo = TraceMemo()
        workload = benchmark("HS", scale=SCALE)
        fresh = ops_of(workload, WARPS, DeterministicRng(7).fork("t"))
        wrapped = MemoizedWorkload(workload, memo)
        memoized = ops_of(wrapped, WARPS, DeterministicRng(7).fork("t"))
        assert memoized == fresh
        # Second lookup replays the stored tuples, still identical.
        replay = ops_of(wrapped, WARPS, DeterministicRng(7).fork("t"))
        assert replay == fresh
        assert (memo.misses, memo.hits) == (1, 1)

    def test_each_lookup_returns_fresh_iterators(self):
        memo = TraceMemo()
        workload = benchmark("MM", scale=SCALE)
        first = memo.build_streams(workload, 2, DeterministicRng(0).fork("t"))
        for stream in first:  # exhaust
            list(stream)
        second = memo.build_streams(workload, 2, DeterministicRng(0).fork("t"))
        assert all(len(list(s)) > 0 for s in second)


class TestKeyIsolation:
    """A hit must never cross a (name, scale, seed, warps) boundary."""

    def base_key(self):
        return TraceMemo._key(benchmark("HS", scale=SCALE), WARPS,
                              DeterministicRng(7).fork("t"))

    @pytest.mark.parametrize("workload,num_warps,rng_seed", [
        (benchmark("MM", scale=SCALE), WARPS, 7),         # name
        (benchmark("HS", scale=SCALE * 2), WARPS, 7),     # scale
        (benchmark("HS", scale=SCALE), WARPS + 1, 7),     # warp count
        (benchmark("HS", scale=SCALE), WARPS, 8),         # seed
    ])
    def test_any_identity_change_changes_key(self, workload, num_warps,
                                             rng_seed):
        other = TraceMemo._key(workload, num_warps,
                               DeterministicRng(rng_seed).fork("t"))
        assert other != self.base_key()

    def test_fork_name_changes_key(self):
        # Tenant 0 and tenant 1 of the same benchmark use different rng
        # forks and must not share a trace.
        a = TraceMemo._key(benchmark("HS", scale=SCALE), WARPS,
                           DeterministicRng(7).fork("tenant0"))
        b = TraceMemo._key(benchmark("HS", scale=SCALE), WARPS,
                           DeterministicRng(7).fork("tenant1"))
        assert a != b

    def test_distinct_workloads_memoize_distinct_streams(self):
        memo = TraceMemo()
        hs = ops_of(MemoizedWorkload(benchmark("HS", scale=SCALE), memo),
                    WARPS, DeterministicRng(7).fork("t"))
        mm = ops_of(MemoizedWorkload(benchmark("MM", scale=SCALE), memo),
                    WARPS, DeterministicRng(7).fork("t"))
        assert memo.misses == 2 and memo.hits == 0
        assert hs != mm

    def test_rng_without_seed_is_never_memoized(self):
        import random

        class Anonymous:
            def stream(self, name):
                return random.Random(hash(name) & 0xFFFF)

        memo = TraceMemo()
        memo.build_streams(benchmark("HS", scale=SCALE), 2, Anonymous())
        memo.build_streams(benchmark("HS", scale=SCALE), 2, Anonymous())
        assert len(memo) == 0 and memo.hits == 0 and memo.misses == 0


class TestBounds:
    def test_lru_eviction_keeps_max_entries(self):
        memo = TraceMemo(max_entries=2)
        workload = benchmark("HS", scale=SCALE)
        for seed in range(4):
            memo.build_streams(workload, 2, DeterministicRng(seed).fork("t"))
        assert len(memo) == 2
        # Oldest entries were evicted: seed 0 misses again.
        memo.build_streams(workload, 2, DeterministicRng(0).fork("t"))
        assert memo.misses == 5

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceMemo(max_entries=0)


class TestMemoizedWorkloadProxy:
    def test_delegates_identity(self):
        workload = benchmark("FFT", scale=SCALE)
        wrapped = MemoizedWorkload(workload, TraceMemo())
        assert wrapped.name == workload.name
        assert wrapped.spec is workload.spec
        assert wrapped.scale == workload.scale
