"""Tests for the benchmark suite, pairs table and workload plumbing."""

import pytest

from repro.engine.rng import DeterministicRng
from repro.workloads import WORKLOAD_PAIRS, benchmark, benchmark_names, pair_class
from repro.workloads.base import Workload, WorkloadSpec
from repro.workloads.pairs import (
    REPRESENTATIVE_PAIRS,
    pairs_in_class,
    split_pair,
    vm_sensitive_pairs,
)
from repro.workloads.suite import BENCHMARKS, benchmarks_in_category


class TestSuiteTable:
    def test_thirteen_benchmarks_of_table2(self):
        assert benchmark_names() == [
            "MM", "HS", "RAY", "FFT", "LPS", "JPEG", "LIB", "SRAD", "3DS",
            "BLK", "QTC", "SAD", "GUPS",
        ]

    def test_category_split_matches_table2(self):
        assert benchmarks_in_category("L") == ["MM", "HS", "RAY", "FFT", "LPS"]
        assert benchmarks_in_category("M") == ["JPEG", "LIB", "SRAD", "3DS"]
        assert benchmarks_in_category("H") == ["BLK", "QTC", "SAD", "GUPS"]

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            benchmark("NOPE")

    def test_heavy_footprints_dwarf_the_l2_tlb(self):
        # 1024 TLB entries x 4KB pages = 4MB of reach
        for name in benchmarks_in_category("H"):
            assert BENCHMARKS[name].footprint_bytes > 16 * 4 * 1024 * 1024

    def test_light_base_footprints_fit_the_l2_tlb(self):
        for name in benchmarks_in_category("L"):
            assert BENCHMARKS[name].footprint_bytes <= 1024 * 4096


class TestWorkloadClass:
    def test_streams_are_fresh_and_deterministic(self):
        wl = benchmark("FFT")
        rng1 = DeterministicRng(7)
        rng2 = DeterministicRng(7)
        s1 = wl.build_streams(4, rng1)
        s2 = wl.build_streams(4, rng2)
        assert len(s1) == len(s2) == 4
        ops1 = [op.addrs for op in s1[0]]
        ops2 = [op.addrs for op in s2[0]]
        assert ops1 == ops2

    def test_scale_changes_ops_per_warp(self):
        wl = benchmark("MM", scale=0.5)
        assert wl.ops_per_warp == BENCHMARKS["MM"].ops_per_warp // 2
        assert wl.scaled(2.0).ops_per_warp == BENCHMARKS["MM"].ops_per_warp * 2

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            Workload(BENCHMARKS["MM"], scale=0)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="X", category="Z", pattern="streaming",
                         footprint_bytes=1, mean_compute=1, ops_per_warp=1,
                         pattern_args={})
        with pytest.raises(ValueError):
            WorkloadSpec(name="X", category="L", pattern="nope",
                         footprint_bytes=1, mean_compute=1, ops_per_warp=1,
                         pattern_args={})


class TestPairs:
    def test_exactly_45_pairs(self):
        assert len(WORKLOAD_PAIRS) == 45
        assert len(set(WORKLOAD_PAIRS)) == 45

    def test_all_six_classes_represented(self):
        classes = {pair_class(p) for p in WORKLOAD_PAIRS}
        assert classes == {"LL", "ML", "MM", "HL", "HM", "HH"}

    def test_class_counts_favor_vm_sensitive(self):
        assert len(pairs_in_class("HH")) == 6
        assert len(pairs_in_class("HM")) == 16
        assert len(pairs_in_class("HL")) == 10
        assert len(pairs_in_class("MM")) == 5
        assert len(pairs_in_class("ML")) == 4
        assert len(pairs_in_class("LL")) == 4

    def test_vm_sensitive_subset_is_32(self):
        """The paper's '32 (out of 45) virtual memory intensive workloads'."""
        assert len(vm_sensitive_pairs()) == 32

    def test_paper_named_pairs_present(self):
        for pairs in REPRESENTATIVE_PAIRS.values():
            for pair in pairs:
                assert pair in WORKLOAD_PAIRS

    def test_pair_class_normalizes_order(self):
        assert pair_class("BLK.HS") == "HL"
        assert pair_class("HS.MM") == "LL"
        assert pair_class("3DS.FFT") == "ML"
        assert pair_class("GUPS.SAD") == "HH"

    def test_split_pair(self):
        assert split_pair("BLK.3DS") == ("BLK", "3DS")
        with pytest.raises(KeyError):
            split_pair("BLK.NOPE")
