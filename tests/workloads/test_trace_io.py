"""Tests for trace recording and replay."""

import json

import pytest

from repro.engine.config import GpuConfig
from repro.engine.rng import DeterministicRng
from repro.gpu.warp import WarpOp
from repro.tenancy.manager import MultiTenantManager
from repro.tenancy.tenant import Tenant
from repro.workloads import benchmark
from repro.workloads.trace_io import (
    TraceWorkload,
    load_trace,
    record_workload,
    save_trace,
)


def ops_of(stream):
    return [(op.compute, op.addrs, op.is_write) for op in stream]


class TestSaveLoadRoundtrip:
    def test_roundtrip_preserves_ops(self, tmp_path):
        streams = [
            [WarpOp(3, [0x1000]), WarpOp(0, [0x2000, 0x3000], True)],
            [WarpOp(7, [0x4000])],
        ]
        path = tmp_path / "t.jsonl"
        written = save_trace(streams, path, name="demo")
        assert written == 3
        wl = load_trace(path)
        assert wl.name == "demo"
        assert wl.recorded_warps == 2
        replayed = wl.build_streams(2, rng=None)
        assert ops_of(replayed[0]) == [(3, (0x1000,), False),
                                       (0, (0x2000, 0x3000), True)]
        assert ops_of(replayed[1]) == [(7, (0x4000,), False)]

    def test_record_workload_deterministic(self, tmp_path):
        wl = benchmark("FFT", scale=0.1)
        p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        record_workload(wl, 4, DeterministicRng(5), p1)
        record_workload(wl, 4, DeterministicRng(5), p2)
        assert p1.read_text() == p2.read_text()

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format": 99, "name": "x", "warps": 1})
                        + "\n")
        with pytest.raises(ValueError):
            load_trace(path)


class TestWarpRedistribution:
    def make_trace(self, tmp_path, warps=4, ops=3):
        streams = [
            [WarpOp(w, [(w * 10 + i) << 12]) for i in range(ops)]
            for w in range(warps)
        ]
        path = tmp_path / "t.jsonl"
        save_trace(streams, path)
        return load_trace(path)

    def test_fewer_slots_merge_warps(self, tmp_path):
        wl = self.make_trace(tmp_path, warps=4, ops=2)
        streams = [list(s) for s in wl.build_streams(2, None)]
        assert sum(len(s) for s in streams) == 8
        # recorded warp order preserved within each slot
        assert [op.compute for op in streams[0]] == [0, 0, 2, 2]

    def test_more_slots_leave_empties(self, tmp_path):
        wl = self.make_trace(tmp_path, warps=2, ops=1)
        streams = [list(s) for s in wl.build_streams(4, None)]
        assert sum(len(s) for s in streams) == 2
        assert [len(s) for s in streams] == [1, 1, 0, 0]

    def test_zero_slots_rejected(self, tmp_path):
        wl = self.make_trace(tmp_path)
        with pytest.raises(ValueError):
            wl.build_streams(0, None)


class TestReplayAsTenant:
    def test_trace_runs_through_the_manager(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record_workload(benchmark("HS", scale=0.05), 8,
                        DeterministicRng(1), path)
        cfg = GpuConfig.baseline(num_sms=4)
        manager = MultiTenantManager(cfg, [Tenant(0, load_trace(path))],
                                     warps_per_sm=2)
        result = manager.run()
        assert result.tenants[0].completed_executions == 1
        assert result.tenants[0].instructions > 0

    def test_replay_matches_original_workload_run(self, tmp_path):
        """Replaying a recorded synthetic execution reproduces its
        instruction count exactly."""
        wl = benchmark("FFT", scale=0.05)
        path = tmp_path / "t.jsonl"
        record_workload(wl, 8, DeterministicRng(3), path)

        cfg = GpuConfig.baseline(num_sms=4)
        replay = MultiTenantManager(cfg, [Tenant(0, load_trace(path))],
                                    warps_per_sm=2).run()
        # the original, with the same stream-build rng as the recording
        class Once:
            name = "orig"
            def build_streams(self, num_warps, rng):
                return wl.build_streams(num_warps, DeterministicRng(3))
        direct = MultiTenantManager(cfg, [Tenant(0, Once())],
                                    warps_per_sm=2).run()
        assert (replay.tenants[0].instructions
                == direct.tenants[0].instructions)
