"""Tests for the access-pattern primitives."""

import random

import pytest

from repro.gpu.warp import WarpOp
from repro.workloads.patterns import (
    HEAP_BASE,
    PAGE_4K,
    PATTERNS,
    TAIL_BASE,
    blocked_reuse,
    hotspot,
    per_warp_disjoint,
    stencil,
    streaming,
    strided,
    uniform_random,
    with_tail,
)


def collect(gen):
    ops = list(gen)
    assert all(isinstance(op, WarpOp) for op in ops)
    return ops


def pages_of(ops):
    return {addr // PAGE_4K for op in ops for addr in op.addrs}


FOOTPRINT = 64 * PAGE_4K


@pytest.mark.parametrize("name", sorted(set(PATTERNS) - {"with_tail"}))
def test_every_pattern_yields_requested_ops(name):
    rng = random.Random(0)
    ops = collect(PATTERNS[name](0, 4, FOOTPRINT, 50, 10, rng))
    assert len(ops) == 50
    assert all(op.addrs for op in ops)


@pytest.mark.parametrize("name", sorted(set(PATTERNS) - {"with_tail"}))
def test_addresses_stay_within_heap_footprint(name):
    rng = random.Random(1)
    ops = collect(PATTERNS[name](1, 4, FOOTPRINT, 80, 10, rng))
    for op in ops:
        for addr in op.addrs:
            assert HEAP_BASE <= addr < HEAP_BASE + 2 * FOOTPRINT


def test_streaming_is_sequential_per_warp():
    ops = collect(streaming(0, 4, FOOTPRINT, 20, 0, random.Random(0)))
    addrs = [op.addrs[0] for op in ops]
    assert addrs == sorted(addrs)


def test_streaming_warps_get_disjoint_slices():
    a = pages_of(collect(streaming(0, 4, FOOTPRINT, 30, 0, random.Random(0))))
    b = pages_of(collect(streaming(1, 4, FOOTPRINT, 30, 0, random.Random(0))))
    assert a.isdisjoint(b)


def test_blocked_reuse_dwells_in_small_page_sets():
    ops = collect(blocked_reuse(0, 4, FOOTPRINT, 64, 0, random.Random(0),
                                block_bytes=4 * PAGE_4K, reuse=16))
    # first 16 ops stay inside one 4-page block
    first_block_pages = pages_of(ops[:16])
    assert len(first_block_pages) <= 4


def test_uniform_random_covers_many_pages():
    ops = collect(uniform_random(0, 4, 1024 * PAGE_4K, 200, 0, random.Random(0)))
    assert len(pages_of(ops)) > 150


def test_uniform_random_divergence_emits_multiple_addrs():
    ops = collect(uniform_random(0, 4, FOOTPRINT, 10, 0, random.Random(0),
                                 divergence=4))
    assert all(len(op.addrs) == 4 for op in ops)


def test_hotspot_concentrates_accesses():
    ops = collect(hotspot(0, 4, 100 * PAGE_4K, 500, 0, random.Random(0),
                          hot_fraction=0.1, hot_probability=0.9))
    hot_limit = HEAP_BASE + 10 * PAGE_4K
    hot = sum(1 for op in ops if op.addrs[0] < hot_limit)
    assert hot / len(ops) > 0.85


def test_per_warp_disjoint_regions_do_not_overlap():
    kwargs = dict(region_bytes=8 * PAGE_4K)
    a = pages_of(collect(per_warp_disjoint(0, 8, FOOTPRINT, 40, 0,
                                           random.Random(0), **kwargs)))
    b = pages_of(collect(per_warp_disjoint(1, 8, FOOTPRINT, 40, 0,
                                           random.Random(0), **kwargs)))
    assert a.isdisjoint(b)


def test_stencil_touches_neighbouring_rows():
    ops = collect(stencil(0, 2, FOOTPRINT, 10, 0, random.Random(0),
                          row_bytes=2 * PAGE_4K))
    assert all(len(op.addrs) == 2 for op in ops)


def test_with_tail_mixes_tail_accesses():
    rng = random.Random(0)
    ops = collect(with_tail(0, 4, FOOTPRINT, 1000, 0, rng,
                            base_pattern="streaming",
                            tail_bytes=1024 * PAGE_4K,
                            tail_probability=0.2))
    tail_ops = [op for op in ops if op.addrs[0] >= TAIL_BASE]
    assert 0.1 < len(tail_ops) / len(ops) < 0.3


def test_with_tail_zero_probability_is_pure_base():
    rng = random.Random(0)
    ops = collect(with_tail(0, 4, FOOTPRINT, 100, 0, rng,
                            base_pattern="streaming",
                            tail_bytes=PAGE_4K, tail_probability=0.0))
    assert all(op.addrs[0] < TAIL_BASE for op in ops)


def test_compute_gap_scales_with_mean():
    rng = random.Random(0)
    ops = collect(streaming(0, 1, FOOTPRINT, 200, 100, rng))
    mean = sum(op.compute for op in ops) / len(ops)
    assert 80 < mean < 120


def test_zero_compute_mean_yields_zero_gaps():
    ops = collect(streaming(0, 1, FOOTPRINT, 20, 0, random.Random(0)))
    assert all(op.compute == 0 for op in ops)
