"""Tests for the FWA/TWM/WTM hardware structures of Figure 4."""

import pytest

from repro.core.structures import (
    FreeWalkerArray,
    TenantWalkerMap,
    WalkerTenantMap,
    partition_walkers,
)


class TestFreeWalkerArray:
    def test_initial_free_slots(self):
        fwa = FreeWalkerArray(num_walkers=4, per_walker_queue=12)
        assert all(fwa.free_slots(w) == 12 for w in range(4))
        assert all(fwa.occupied(w) == 0 for w in range(4))

    def test_consume_release_roundtrip(self):
        fwa = FreeWalkerArray(2, 3)
        fwa.consume_slot(0)
        fwa.consume_slot(0)
        assert fwa.free_slots(0) == 1
        assert fwa.occupied(0) == 2
        fwa.release_slot(0)
        assert fwa.free_slots(0) == 2

    def test_underflow_overflow_guards(self):
        fwa = FreeWalkerArray(1, 1)
        fwa.consume_slot(0)
        with pytest.raises(ValueError):
            fwa.consume_slot(0)
        fwa.release_slot(0)
        with pytest.raises(ValueError):
            fwa.release_slot(0)

    def test_is_stolen_bit(self):
        fwa = FreeWalkerArray(2, 4)
        assert not fwa.is_stolen(0)
        fwa.set_stolen(0, True)
        assert fwa.is_stolen(0)
        assert not fwa.is_stolen(1)

    def test_state_bits_default_config(self):
        # 16 walkers, 12-slot queues: 4 bits free-count + 1 is_stolen each
        fwa = FreeWalkerArray(16, 12)
        assert fwa.state_bits() == 16 * 5  # 80 bits, matching the paper


class TestTenantWalkerMap:
    def test_ownership_bitmap(self):
        twm = TenantWalkerMap(max_tenants=2, num_walkers=8, queue_entries=96)
        twm.set_owners(0, [0, 1, 2, 3])
        twm.set_owners(1, [4, 5, 6, 7])
        assert twm.owned_walkers(0) == [0, 1, 2, 3]
        assert twm.owns(1, 5)
        assert not twm.owns(1, 2)

    def test_pend_walks_counting(self):
        twm = TenantWalkerMap(2, 8, 96)
        twm.set_owners(0, [0])
        twm.inc_pend(0)
        twm.inc_pend(0)
        twm.dec_pend(0)
        assert twm.pend_walks(0) == 1

    def test_pend_underflow_raises(self):
        twm = TenantWalkerMap(2, 8, 96)
        twm.set_owners(0, [0])
        with pytest.raises(ValueError):
            twm.dec_pend(0)

    def test_epoch_counters_reset(self):
        twm = TenantWalkerMap(2, 8, 96)
        twm.set_owners(0, [0])
        twm.set_owners(1, [1])
        twm.inc_enq_epoch(0)
        twm.inc_enq_epoch(0)
        twm.inc_enq_epoch(1)
        assert twm.enq_epoch(0) == 2
        twm.reset_epoch()
        assert twm.enq_epoch(0) == 0
        assert twm.enq_epoch(1) == 0

    def test_enq_epoch_saturates_at_counter_width(self):
        twm = TenantWalkerMap(2, 8, 96, epoch_bits=2)
        twm.set_owners(0, [0])
        for _ in range(10):
            twm.inc_enq_epoch(0)
        assert twm.enq_epoch(0) == 3  # 2-bit counter saturates

    def test_clear_tenant(self):
        twm = TenantWalkerMap(2, 8, 96)
        twm.set_owners(0, [0, 1])
        twm.clear_tenant(0)
        assert twm.owned_walkers(0) == []
        assert twm.tenants == []

    def test_walker_id_range_checked(self):
        twm = TenantWalkerMap(2, 4, 48)
        with pytest.raises(ValueError):
            twm.set_owners(0, [4])


class TestWalkerTenantMap:
    def test_owner_roundtrip(self):
        wtm = WalkerTenantMap(num_walkers=4, max_tenants=2)
        wtm.set_owner(2, 1)
        assert wtm.owner_of(2) == 1
        assert wtm.owner_of(0) == 0

    def test_rejects_tenant_beyond_design_max(self):
        wtm = WalkerTenantMap(4, 2)
        with pytest.raises(ValueError):
            wtm.set_owner(0, 2)


class TestStateBitsAccounting:
    def test_total_state_is_a_couple_hundred_bits(self):
        """Paper Section VI-A: ~192 bits at the default configuration
        (16 walkers, 2 tenants, 192 queue entries).  Our field widths
        give 176; the claim 'couple of hundred bits' holds."""
        fwa = FreeWalkerArray(16, 12)
        twm = TenantWalkerMap(max_tenants=2, num_walkers=16, queue_entries=192)
        wtm = WalkerTenantMap(16, max_tenants=4)
        total = fwa.state_bits() + twm.state_bits() + wtm.state_bits()
        assert fwa.state_bits() == 80
        assert wtm.state_bits() == 32
        assert total <= 256

    def test_twm_grows_linearly_wtm_logarithmically_with_tenants(self):
        twm2 = TenantWalkerMap(2, 16, 192).state_bits()
        twm8 = TenantWalkerMap(8, 16, 192).state_bits()
        assert twm8 == 4 * twm2
        wtm2 = WalkerTenantMap(16, 2).state_bits()
        wtm4 = WalkerTenantMap(16, 4).state_bits()
        wtm8 = WalkerTenantMap(16, 8).state_bits()
        assert wtm2 == 16 and wtm4 == 32 and wtm8 == 48


class TestPartitionWalkers:
    def test_two_tenants_equal_split(self):
        assignment = partition_walkers(16, [0, 1])
        assert len(assignment[0]) == len(assignment[1]) == 8
        assert sorted(assignment[0] + assignment[1]) == list(range(16))

    def test_three_tenants_round_robin_remainder(self):
        assignment = partition_walkers(16, [0, 1, 2])
        sizes = sorted(len(v) for v in assignment.values())
        assert sizes == [5, 5, 6]

    def test_single_tenant_gets_everything(self):
        assignment = partition_walkers(8, [3])
        assert assignment[3] == list(range(8))

    def test_empty_tenants(self):
        assert partition_walkers(8, []) == {}
