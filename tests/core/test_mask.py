"""Tests for the simplified MASK comparator."""

from repro.core.mask import MaskController


def make_mask(epoch=20, tokens=10):
    return MaskController([0, 1], epoch_lookups=epoch,
                          total_tokens_per_epoch=tokens)


class TestTokens:
    def test_initial_tokens_split_equally(self):
        m = make_mask(tokens=10)
        assert m.tokens_of(0) == 5
        assert m.tokens_of(1) == 5

    def test_fill_spends_token(self):
        m = make_mask(tokens=4)
        assert m.allow_l2_fill(0)
        assert m.allow_l2_fill(0)
        assert not m.allow_l2_fill(0)  # tenant 0 exhausted its 2 tokens
        assert m.allow_l2_fill(1)      # tenant 1 unaffected

    def test_epoch_reallocates_by_hit_rate_utility(self):
        m = make_mask(epoch=20, tokens=10)
        # tenant 0 hits 100%, tenant 1 hits 0%: tokens should skew to 0
        for _ in range(10):
            m.note_l2_tlb_lookup(0, hit=True)
        for _ in range(10):
            m.note_l2_tlb_lookup(1, hit=False)
        assert m.epochs_completed == 1
        assert m.tokens_of(0) > m.tokens_of(1)
        assert m.tokens_of(1) >= 1  # floor of one token

    def test_no_utility_resets_equal(self):
        m = make_mask(epoch=10, tokens=10)
        for _ in range(10):
            m.note_l2_tlb_lookup(0, hit=False)
        assert m.tokens_of(0) == 5
        assert m.tokens_of(1) == 5


class TestPteBypass:
    def test_low_walker_hit_rate_enables_bypass(self):
        m = make_mask(epoch=10)
        for _ in range(10):
            m.note_walker_cache_access(0, hit=False)
            m.note_l2_tlb_lookup(0, hit=True)
        assert m.pte_bypass(0)
        assert not m.pte_bypass(1)  # no accesses -> assumed cache-friendly

    def test_high_walker_hit_rate_keeps_caching(self):
        m = make_mask(epoch=10)
        for _ in range(10):
            m.note_walker_cache_access(0, hit=True)
            m.note_l2_tlb_lookup(0, hit=True)
        assert not m.pte_bypass(0)


class TestDynamicTenants:
    def test_unknown_tenant_learned_on_the_fly(self):
        m = make_mask()
        m.note_l2_tlb_lookup(7, hit=True)
        assert 7 in m.tenant_ids

    def test_validation(self):
        import pytest
        with pytest.raises(ValueError):
            MaskController([0], epoch_lookups=0)
