"""Tests for policy construction from PolicySpec."""

import pytest

from repro.core.dws import DwsPolicy
from repro.core.dwspp import DwsPlusParams, DwsPlusPolicy
from repro.core.factory import build_mask_controller, build_policy
from repro.core.shared import SharedQueuePolicy
from repro.core.static_partition import StaticPartitionPolicy
from repro.engine.config import PolicySpec


@pytest.mark.parametrize("name,cls", [
    ("baseline", SharedQueuePolicy),
    ("static", StaticPartitionPolicy),
    ("dws", DwsPolicy),
    ("dwspp", DwsPlusPolicy),
    ("mask", SharedQueuePolicy),
    ("mask+dws", DwsPolicy),
])
def test_factory_builds_expected_class(name, cls):
    policy = build_policy(PolicySpec(name=name), num_walkers=4,
                          queue_entries=8, tenant_ids=[0, 1])
    assert isinstance(policy, cls)


def test_dwspp_preset_selection():
    spec = PolicySpec(name="dwspp", params={"preset": "aggressive"})
    policy = build_policy(spec, 4, 8, [0, 1])
    assert policy.params.diff_thres_for_ratio(100.0) == 0.3


def test_dwspp_explicit_params_object():
    params = DwsPlusParams(epoch_length=50)
    spec = PolicySpec(name="dwspp", params={"params": params})
    policy = build_policy(spec, 4, 8, [0, 1])
    assert policy.params.epoch_length == 50


def test_mask_controller_only_for_mask_specs():
    assert build_mask_controller(PolicySpec("baseline"), [0, 1]) is None
    assert build_mask_controller(PolicySpec("dws"), [0, 1]) is None
    assert build_mask_controller(PolicySpec("mask"), [0, 1]) is not None
    assert build_mask_controller(PolicySpec("mask+dws"), [0, 1]) is not None
