"""Property-based tests: policy invariants under arbitrary event orders.

Hypothesis drives random interleavings of arrivals, selections and
completions through each policy and checks the structural invariants
that every policy must maintain regardless of schedule:

* FWA free-slot counters always mirror the ground-truth queues,
* PEND_WALKS counts exactly the unfinished walks,
* no request is ever lost or duplicated,
* capacity is never exceeded,
* Static never crosses tenants; DWS crosses only via stealing.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dws import DwsPolicy
from repro.core.dwspp import DwsPlusParams, DwsPlusPolicy
from repro.core.shared import SharedQueuePolicy
from repro.core.static_partition import StaticPartitionPolicy
from repro.vm.walk import WalkRequest

NUM_WALKERS = 4
QUEUE_ENTRIES = 8
TENANTS = (0, 1)


def make_policy(kind):
    if kind == "shared":
        return SharedQueuePolicy(NUM_WALKERS, QUEUE_ENTRIES)
    if kind == "static":
        return StaticPartitionPolicy(NUM_WALKERS, QUEUE_ENTRIES, TENANTS)
    if kind == "dws":
        return DwsPolicy(NUM_WALKERS, QUEUE_ENTRIES, TENANTS)
    if kind == "dwspp":
        return DwsPlusPolicy(NUM_WALKERS, QUEUE_ENTRIES, TENANTS,
                             params=DwsPlusParams(epoch_length=13))
    raise AssertionError(kind)


# an operation script: (op_kind, argument)
#   0 = arrival from tenant arg%2
#   1 = select on walker arg%NUM_WALKERS
#   2 = complete the oldest in-service walk
operations = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 1000)),
    min_size=1, max_size=200,
)

PARTITIONED = ("static", "dws", "dwspp")
ALL_KINDS = ("shared",) + PARTITIONED


class Harness:
    """Replays an operation script against a policy, tracking truth."""

    def __init__(self, kind):
        self.kind = kind
        self.policy = make_policy(kind)
        self.accepted = []
        self.rejected = 0
        self.in_service = []
        self.completed = []
        self.vpn = 0

    def step(self, op, arg):
        policy = self.policy
        if op == 0:
            self.vpn += 1
            request = WalkRequest(arg % 2, self.vpn, 0)
            if policy.on_arrival(request):
                self.accepted.append(request)
            else:
                self.rejected += 1
        elif op == 1:
            walker = arg % NUM_WALKERS
            request = policy.select(walker)
            if request is not None:
                self.in_service.append((walker, request))
        else:
            if self.in_service:
                walker, request = self.in_service.pop(0)
                policy.on_complete(walker, request)
                self.completed.append(request)

    def check(self):
        policy = self.policy
        queued = policy.pending_total()
        # conservation: accepted = queued + in-service + completed
        assert queued + len(self.in_service) + len(self.completed) == len(
            self.accepted
        )
        assert queued <= QUEUE_ENTRIES
        if self.kind in PARTITIONED:
            policy.check_invariants()
            for tenant in TENANTS:
                unfinished = (
                    policy.queued_for(tenant)
                    + sum(1 for _, r in self.in_service
                          if r.tenant_id == tenant)
                )
                assert policy.twm.pend_walks(tenant) == unfinished


@pytest.mark.parametrize("kind", ALL_KINDS)
@settings(max_examples=40, deadline=None)
@given(script=operations)
def test_policy_structural_invariants(kind, script):
    harness = Harness(kind)
    for op, arg in script:
        harness.step(op, arg)
        harness.check()


@settings(max_examples=40, deadline=None)
@given(script=operations)
def test_static_never_crosses_tenants(script):
    harness = Harness("static")
    for op, arg in script:
        harness.step(op, arg)
    for walker, request in harness.in_service:
        assert harness.policy.wtm.owner_of(walker) == request.tenant_id
        assert not request.stolen


@settings(max_examples=40, deadline=None)
@given(script=operations)
def test_dws_cross_tenant_service_is_always_a_steal(script):
    harness = Harness("dws")
    serviced = []
    for op, arg in script:
        before = len(harness.in_service)
        harness.step(op, arg)
        if op == 1 and len(harness.in_service) > before:
            serviced.append(harness.in_service[-1])
    for walker, request in serviced:
        owner = harness.policy.wtm.owner_of(walker)
        if owner != request.tenant_id:
            assert request.stolen
        else:
            assert not request.stolen


@settings(max_examples=40, deadline=None)
@given(script=operations)
def test_dws_steals_only_when_owner_has_nothing_queued(script):
    """The defining DWS rule, checked at every select."""
    policy = make_policy("dws")
    vpn = 0
    in_service = []
    for op, arg in script:
        if op == 0:
            vpn += 1
            policy.on_arrival(WalkRequest(arg % 2, vpn, 0))
        elif op == 1:
            walker = arg % NUM_WALKERS
            owner = policy.wtm.owner_of(walker)
            owner_queued_before = policy.queued_for(owner)
            request = policy.select(walker)
            if request is not None:
                in_service.append((walker, request))
                if request.stolen:
                    assert owner_queued_before == 0
        else:
            if in_service:
                walker, request = in_service.pop(0)
                policy.on_complete(walker, request)


@settings(max_examples=40, deadline=None)
@given(script=operations)
def test_dwspp_never_steals_twice_consecutively(script):
    policy = make_policy("dwspp")
    last_was_steal = {w: False for w in range(NUM_WALKERS)}
    vpn = 0
    in_service = []
    for op, arg in script:
        if op == 0:
            vpn += 1
            policy.on_arrival(WalkRequest(arg % 2, vpn, 0))
        elif op == 1:
            walker = arg % NUM_WALKERS
            owner = policy.wtm.owner_of(walker)
            owner_had_queued = policy.queued_for(owner) > 0
            request = policy.select(walker)
            if request is not None:
                if request.stolen and owner_had_queued:
                    # a despite-pending steal must not follow a steal
                    assert not last_was_steal[walker]
                last_was_steal[walker] = request.stolen
                in_service.append((walker, request))
        else:
            if in_service:
                walker, request = in_service.pop(0)
                policy.on_complete(walker, request)
