"""Behavioural tests for the walker-scheduling policies.

These drive the policies directly through the WalkSchedulingPolicy
protocol (no simulator), checking queueing, partitioning and stealing
decisions step by step.
"""

import pytest

from repro.core.dws import DwsPolicy
from repro.core.dwspp import DwsPlusParams, DwsPlusPolicy
from repro.core.shared import SharedQueuePolicy
from repro.core.static_partition import StaticPartitionPolicy
from repro.vm.walk import WalkRequest


def walk(tenant, vpn=0, t=0):
    return WalkRequest(tenant, vpn, t)


class TestSharedQueuePolicy:
    def test_fifo_across_tenants(self):
        p = SharedQueuePolicy(num_walkers=2, queue_entries=4)
        a, b, c = walk(0), walk(1), walk(0)
        for r in (a, b, c):
            assert p.on_arrival(r)
        assert p.select(0) is a
        assert p.select(1) is b
        assert p.select(0) is c
        assert p.select(1) is None

    def test_capacity_backpressure(self):
        p = SharedQueuePolicy(2, 2)
        assert p.on_arrival(walk(0))
        assert p.on_arrival(walk(0))
        assert not p.on_arrival(walk(1))

    def test_pending_counts(self):
        p = SharedQueuePolicy(2, 8)
        p.on_arrival(walk(0))
        p.on_arrival(walk(0))
        p.on_arrival(walk(1))
        assert p.pending_for(0) == 2
        assert p.pending_for(1) == 1
        assert p.pending_total() == 3


def make_partitioned(cls, num_walkers=4, queue_entries=8, tenants=(0, 1), **kw):
    return cls(num_walkers, queue_entries, tenants, **kw)


class TestPartitionedArrivalRouting:
    def test_arrival_goes_to_owned_least_loaded_walker(self):
        p = make_partitioned(DwsPolicy)
        # tenants 0 and 1 each own 2 of 4 walkers (round robin: 0,2 / 1,3)
        assert p.twm.owned_walkers(0) == [0, 2]
        assert p.twm.owned_walkers(1) == [1, 3]
        r = walk(0)
        p.on_arrival(r)
        assert p.queued_for(0) == 1
        assert p.queued_for(1) == 0
        p.check_invariants()

    def test_arrivals_balance_across_owned_queues(self):
        p = make_partitioned(DwsPolicy)
        for _ in range(4):
            p.on_arrival(walk(0))
        assert len(p._queues[0]) == 2
        assert len(p._queues[2]) == 2
        assert len(p._queues[1]) == len(p._queues[3]) == 0

    def test_per_tenant_backpressure(self):
        p = make_partitioned(DwsPolicy, num_walkers=2, queue_entries=4)
        # tenant 0 owns walker 0 only: queue capacity 2
        assert p.on_arrival(walk(0))
        assert p.on_arrival(walk(0))
        assert not p.on_arrival(walk(0))  # tenant 0 full
        assert p.on_arrival(walk(1))      # tenant 1 unaffected

    def test_unregistered_tenant_rejected(self):
        p = make_partitioned(DwsPolicy)
        with pytest.raises(ValueError):
            p.on_arrival(walk(5))

    def test_pend_walks_tracks_unfinished(self):
        p = make_partitioned(DwsPolicy)
        r = walk(0)
        p.on_arrival(r)
        assert p.twm.pend_walks(0) == 1
        got = p.select(0)
        assert got is r
        assert p.twm.pend_walks(0) == 1  # still in service
        p.on_complete(0, r)
        assert p.twm.pend_walks(0) == 0


class TestStaticPartitioning:
    def test_never_steals(self):
        p = make_partitioned(StaticPartitionPolicy)
        p.on_arrival(walk(1))
        # walker 0 (owned by tenant 0) must idle despite tenant 1's queue
        assert p.select(0) is None
        # walker 1 (owned by tenant 1) services it
        assert p.select(1) is not None

    def test_serves_sibling_queue_of_same_owner(self):
        p = make_partitioned(StaticPartitionPolicy)
        for _ in range(3):
            p.on_arrival(walk(0))  # queues of walkers 0 and 2
        # walker 2 can pick up even if its own queue is shorter
        first = p.select(2)
        assert first is not None and first.tenant_id == 0


class TestDwsStealing:
    def test_steals_when_owner_idle(self):
        p = make_partitioned(DwsPolicy)
        victim_walk = walk(1)
        p.on_arrival(victim_walk)
        got = p.select(0)  # tenant-0 walker, owner has nothing queued
        assert got is victim_walk
        assert got.stolen
        assert p.fwa.is_stolen(0)

    def test_never_steals_past_owner_queued_walk(self):
        p = make_partitioned(DwsPolicy)
        own = walk(0)
        other = walk(1)
        p.on_arrival(other)
        p.on_arrival(own)
        got = p.select(0)
        assert got is own
        assert not got.stolen
        assert not p.fwa.is_stolen(0)

    def test_steal_targets_tenant_with_most_queued(self):
        p = DwsPolicy(num_walkers=6, queue_entries=12, tenant_ids=[0, 1, 2])
        p.on_arrival(walk(1))
        for _ in range(3):
            p.on_arrival(walk(2))
        got = p.select(0)  # tenant-0 walker steals
        assert got.tenant_id == 2

    def test_is_stolen_resets_on_owner_walk(self):
        p = make_partitioned(DwsPolicy)
        p.on_arrival(walk(1))
        stolen = p.select(0)
        assert p.fwa.is_stolen(0)
        p.on_complete(0, stolen)
        p.on_arrival(walk(0))
        own = p.select(0)
        assert own.tenant_id == 0
        assert not p.fwa.is_stolen(0)

    def test_select_returns_none_when_nothing_anywhere(self):
        p = make_partitioned(DwsPolicy)
        assert p.select(0) is None

    def test_fwa_consistency_through_random_ops(self):
        p = make_partitioned(DwsPolicy, num_walkers=4, queue_entries=16)
        import random
        rng = random.Random(42)
        in_service = []
        for _ in range(300):
            action = rng.random()
            if action < 0.5:
                p.on_arrival(walk(rng.randint(0, 1)))
            elif action < 0.8:
                r = p.select(rng.randint(0, 3))
                if r is not None:
                    in_service.append(r)
            elif in_service:
                r = in_service.pop(rng.randrange(len(in_service)))
                p.on_complete(0, r)
            p.check_invariants()


class TestDwsPlusParams:
    def test_default_schedule_matches_table_iv(self):
        params = DwsPlusParams.default()
        assert params.diff_thres_for_ratio(1.0) == 0.4
        assert params.diff_thres_for_ratio(1.5) == 0.4
        assert params.diff_thres_for_ratio(1.8) == 0.6
        assert params.diff_thres_for_ratio(2.5) == 0.8
        assert params.diff_thres_for_ratio(3.5) == 0.9
        assert params.diff_thres_for_ratio(10.0) is None  # no stealing
        assert params.queue_thres == 0.51

    def test_conservative_matches_table_vii(self):
        params = DwsPlusParams.conservative()
        assert params.queue_thres == 0.17
        assert params.diff_thres_for_ratio(1.0) == 0.4

    def test_aggressive_matches_table_vii(self):
        params = DwsPlusParams.aggressive()
        assert params.queue_thres == 0.51
        for r in (1.0, 2.5, 100.0):
            assert params.diff_thres_for_ratio(r) == 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            DwsPlusParams(epoch_length=0)
        with pytest.raises(ValueError):
            DwsPlusParams(queue_thres=0)
        with pytest.raises(ValueError):
            DwsPlusParams(schedule=((2.0, 0.4), (1.0, 0.6)))


class TestDwsPlusStealing:
    def make(self, **params_kw):
        params = DwsPlusParams(**params_kw) if params_kw else DwsPlusParams()
        return DwsPlusPolicy(num_walkers=4, queue_entries=8,
                             tenant_ids=[0, 1], params=params)

    def test_steals_despite_pending_when_imbalance_large(self):
        p = self.make()
        p.diff_thres = 0.3
        p.on_arrival(walk(0))          # own pend 1
        for _ in range(4):             # other pend 4: imbalance 3/8 > 0.3
            p.on_arrival(walk(1))
        got = p.select(0)
        assert got.tenant_id == 1 and got.stolen

    def test_no_steal_when_imbalance_below_threshold(self):
        p = self.make()
        p.diff_thres = 0.4
        p.on_arrival(walk(0))
        for _ in range(3):             # imbalance 2/8 = 0.25 < 0.4
            p.on_arrival(walk(1))
        got = p.select(0)
        assert got.tenant_id == 0

    def test_no_consecutive_steals(self):
        p = self.make()
        p.diff_thres = 0.1
        p.on_arrival(walk(0))
        for _ in range(4):
            p.on_arrival(walk(1))
        first = p.select(0)
        assert first.stolen
        p.on_complete(0, first)
        second = p.select(0)           # is_stolen bit forbids a second steal
        assert second.tenant_id == 0

    def test_queue_thres_forbids_steal(self):
        p = self.make(queue_thres=0.4)
        p.diff_thres = 0.1
        # fill walker 0's own queue above 40% (capacity 2 -> 1 occupied = 0.5)
        p.on_arrival(walk(0))
        for _ in range(4):
            p.on_arrival(walk(1))
        got = p.select(0)
        assert got.tenant_id == 0

    def test_diff_thres_none_disables_despite_pending_steal(self):
        p = self.make()
        p.diff_thres = None
        p.on_arrival(walk(0))
        for _ in range(4):
            p.on_arrival(walk(1))
        got = p.select(0)
        assert got.tenant_id == 0

    def test_owner_idle_steal_still_works(self):
        p = self.make()
        p.diff_thres = None  # even with stealing "off", utilization steal is on
        p.on_arrival(walk(1))
        got = p.select(0)
        assert got.tenant_id == 1 and got.stolen

    def test_epoch_updates_diff_thres_from_rate_ratio(self):
        p = DwsPlusPolicy(4, 8, [0, 1], params=DwsPlusParams(epoch_length=10))
        # 5 arrivals tenant 0, 5 arrivals tenant 1 -> ratio 1.0 -> 0.4
        arrivals = [walk(0) for _ in range(5)] + [walk(1) for _ in range(5)]
        for i, r in enumerate(arrivals):
            accepted = p.on_arrival(r)
            # drain queues so capacity never blocks the epoch accounting
            if accepted:
                got = p.select(p.twm.owned_walkers(r.tenant_id)[0])
                if got:
                    p.on_complete(0, got)
        assert p.epochs_completed == 1
        assert p.diff_thres == 0.4

    def test_epoch_skewed_rates_raise_threshold(self):
        p = DwsPlusPolicy(4, 16, [0, 1], params=DwsPlusParams(epoch_length=10))
        for i in range(10):
            tenant = 0 if i < 8 else 1  # ratio 8/2 = 4 -> 0.9
            accepted = p.on_arrival(walk(tenant))
            if accepted:
                got = p.select(p.twm.owned_walkers(tenant)[0])
                if got:
                    p.on_complete(0, got)
        assert p.epochs_completed == 1
        assert p.diff_thres == 0.9

    def test_epoch_one_sided_rates_disable_stealing(self):
        p = DwsPlusPolicy(4, 16, [0, 1], params=DwsPlusParams(epoch_length=10))
        for _ in range(10):
            accepted = p.on_arrival(walk(0))
            if accepted:
                got = p.select(0)
                if got:
                    p.on_complete(0, got)
        assert p.diff_thres is None  # ratio inf -> no stealing tier


class TestDynamicTenantChanges:
    def test_adding_a_tenant_repartitions(self):
        p = DwsPolicy(8, 16, [0])
        assert len(p.twm.owned_walkers(0)) == 8
        p.on_tenant_set_changed([0, 1])
        assert len(p.twm.owned_walkers(0)) == 4
        assert len(p.twm.owned_walkers(1)) == 4

    def test_removing_a_tenant_frees_walkers(self):
        p = DwsPolicy(8, 16, [0, 1])
        p.on_tenant_set_changed([0])
        assert len(p.twm.owned_walkers(0)) == 8
        assert p.twm.owned_walkers(1) == []

    def test_queued_walks_survive_repartition(self):
        p = DwsPolicy(8, 16, [0, 1])
        p.on_arrival(walk(0))
        p.on_tenant_set_changed([0, 1, 2])
        # the queued walk is still serviceable
        served = [p.select(w) for w in range(8)]
        assert any(r is not None and r.tenant_id == 0 for r in served)

    def test_exceeding_design_max_rejected(self):
        p = DwsPolicy(8, 16, [0, 1], max_tenants=2)
        with pytest.raises(ValueError):
            p.on_tenant_set_changed([0, 1, 2])
