"""Additional edge-case and property tests for the core policies."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dws import DwsPolicy
from repro.core.dwspp import (
    AGGRESSIVE_SCHEDULE,
    DEFAULT_SCHEDULE,
    DwsPlusParams,
    DwsPlusPolicy,
)
from repro.core.mask import MaskController
from repro.core.structures import partition_walkers
from repro.vm.walk import WalkRequest


class TestPartitionWalkersProperties:
    @settings(max_examples=60, deadline=None)
    @given(num_walkers=st.integers(1, 64),
           num_tenants=st.integers(1, 8))
    def test_partition_is_complete_and_disjoint(self, num_walkers, num_tenants):
        tenants = list(range(num_tenants))
        assignment = partition_walkers(num_walkers, tenants)
        all_walkers = sorted(w for ws in assignment.values() for w in ws)
        assert all_walkers == list(range(num_walkers))

    @settings(max_examples=60, deadline=None)
    @given(num_walkers=st.integers(1, 64),
           num_tenants=st.integers(1, 8))
    def test_partition_is_balanced(self, num_walkers, num_tenants):
        assignment = partition_walkers(num_walkers, range(num_tenants))
        sizes = [len(ws) for ws in assignment.values()]
        assert max(sizes) - min(sizes) <= 1

    def test_partition_ignores_tenant_id_values(self):
        a = partition_walkers(8, [0, 1])
        b = partition_walkers(8, [5, 9])
        assert a[0] == b[5] and a[1] == b[9]


class TestScheduleProperties:
    @settings(max_examples=60, deadline=None)
    @given(ratio=st.floats(min_value=1.0, max_value=100.0,
                           allow_nan=False, allow_infinity=False))
    def test_default_schedule_monotone_in_ratio(self, ratio):
        """A higher rate skew never makes stealing easier."""
        params = DwsPlusParams()
        t1 = params.diff_thres_for_ratio(ratio)
        t2 = params.diff_thres_for_ratio(ratio * 1.5)
        v1 = t1 if t1 is not None else math.inf
        v2 = t2 if t2 is not None else math.inf
        assert v2 >= v1

    def test_infinite_ratio_handled(self):
        assert DwsPlusParams().diff_thres_for_ratio(math.inf) is None
        assert DwsPlusParams(
            schedule=AGGRESSIVE_SCHEDULE,
            initial_diff_thres=0.3,
        ).diff_thres_for_ratio(math.inf) == 0.3

    def test_default_schedule_is_table_iv(self):
        bounds = [b for b, _ in DEFAULT_SCHEDULE]
        assert bounds == [1.5, 2.0, 3.0, 4.0, math.inf]


class TestDwsPlusEpochEdgeCases:
    def test_single_tenant_never_steals_despite_pending(self):
        p = DwsPlusPolicy(2, 4, [0], params=DwsPlusParams(epoch_length=4))
        for i in range(4):
            p.on_arrival(WalkRequest(0, i, 0))
        assert p.epochs_completed == 1
        # with one tenant the ratio degenerates to 1.0 (threshold 0.4),
        # but there is no other tenant to steal from: the despite-pending
        # gate must stay closed regardless
        assert not p._allow_steal_despite_pending(0, 0)
        got = p.select(0)
        assert got is not None and not got.stolen

    def test_multiple_epochs_retune(self):
        p = DwsPlusPolicy(4, 16, [0, 1], params=DwsPlusParams(epoch_length=4))
        # epoch 1: balanced -> 0.4
        for i, tenant in enumerate((0, 1, 0, 1)):
            p.on_arrival(WalkRequest(tenant, 100 + i, 0))
        assert p.diff_thres == 0.4
        # drain queues, then epoch 2: skewed 3:1 -> 0.8
        for w in range(4):
            r = p.select(w)
            while r is not None:
                p.on_complete(w, r)
                r = p.select(w)
        for i, tenant in enumerate((0, 0, 0, 1)):
            p.on_arrival(WalkRequest(tenant, 200 + i, 0))
        assert p.epochs_completed == 2
        assert p.diff_thres == 0.8

    def test_forbid_consecutive_steals_ablation_flag(self):
        params = DwsPlusParams(forbid_consecutive_steals=False)
        p = DwsPlusPolicy(2, 8, [0, 1], params=params)
        p.diff_thres = 0.1
        p.on_arrival(WalkRequest(0, 1, 0))  # owner has one queued
        for i in range(4):
            p.on_arrival(WalkRequest(1, 10 + i, 0))
        first = p.select(0)
        assert first.stolen
        p.on_complete(0, first)
        second = p.select(0)
        # with the rule disabled, a second consecutive steal is allowed
        assert second.stolen


class TestDwsVictimSelection:
    def test_no_victim_when_others_empty(self):
        p = DwsPolicy(4, 8, [0, 1, 2])
        assert p._choose_victim(0) is None

    def test_victim_is_most_loaded(self):
        p = DwsPolicy(6, 12, [0, 1, 2])
        p.on_arrival(WalkRequest(1, 1, 0))
        for i in range(2):
            p.on_arrival(WalkRequest(2, 10 + i, 0))
        assert p._choose_victim(0) == 2


class TestMaskSequences:
    @settings(max_examples=40, deadline=None)
    @given(hits=st.lists(st.tuples(st.integers(0, 1), st.booleans()),
                         min_size=1, max_size=200))
    def test_tokens_never_negative_and_bounded(self, hits):
        m = MaskController([0, 1], epoch_lookups=16,
                           total_tokens_per_epoch=8)
        for tenant, hit in hits:
            m.note_l2_tlb_lookup(tenant, hit)
            m.allow_l2_fill(tenant)
            assert m.tokens_of(0) >= 0
            assert m.tokens_of(1) >= 0

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(1, 400))
    def test_epoch_count_matches_lookup_volume(self, n):
        m = MaskController([0], epoch_lookups=16)
        for i in range(n):
            m.note_l2_tlb_lookup(0, hit=bool(i % 2))
        assert m.epochs_completed == n // 16
