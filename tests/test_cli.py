"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.harness import faults


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "GUPS.MM"])
        assert args.policy == "dws"
        assert args.scale == 0.5

    def test_experiment_id_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestListCommand:
    def test_lists_benchmarks_and_pairs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for token in ("GUPS", "MM", "HL:", "HH:", "45"):
            assert token in out


class TestCharacterizeCommand:
    def test_single_benchmark(self, capsys):
        rc = main(["characterize", "MM", "--scale", "0.1", "--warps", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MM" in out and "MPMI" in out

    def test_unknown_benchmark_errors(self, capsys):
        rc = main(["characterize", "NOPE", "--scale", "0.1"])
        assert rc == 2


class TestRunCommand:
    def test_run_pair_prints_metrics(self, capsys):
        rc = main(["run", "HS.MM", "--scale", "0.1", "--warps", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        for token in ("total IPC", "weighted IPC", "fairness", "tenant 0",
                      "tenant 1"):
            assert token in out


class TestCompareCommand:
    def test_compare_prints_all_policies(self, capsys):
        rc = main(["compare", "HS.MM", "--scale", "0.1", "--warps", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        for policy in ("baseline", "static", "dws", "dwspp"):
            assert policy in out


class TestExperimentCommand:
    def test_experiment_with_pair_subset(self, capsys):
        rc = main(["experiment", "fig5", "--pairs", "HS.MM",
                   "--scale", "0.1", "--warps", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "HS.MM" in out


class TestCampaignCommand:
    SMALL = ["campaign", "--figures", "fig5", "--pairs", "HS.MM",
             "--scale", "0.05", "--warps", "2", "--workers", "1"]

    @pytest.fixture(autouse=True)
    def _clean_faults(self):
        faults.clear_faults()
        yield
        faults.clear_faults()

    def test_supervision_flags_parse(self):
        args = build_parser().parse_args(
            self.SMALL + ["--max-attempts", "5", "--deadline", "30",
                          "--supervision-report", "out.json"])
        assert args.max_attempts == 5
        assert args.deadline == 30.0
        assert args.supervision_report == "out.json"

    def test_clean_campaign_exits_zero(self, capsys):
        assert main(self.SMALL) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "executed:" in out

    def test_transient_faults_still_exit_zero(self, capsys):
        faults.install_faults(
            [faults.FaultSpec(kind="raise", label="*", fail_attempts=1)])
        assert main(self.SMALL) == 0

    def test_quarantine_exits_one_with_summary_not_traceback(self, capsys):
        faults.install_faults(
            [faults.FaultSpec(kind="raise", label="*", fail_attempts=99)])
        rc = main(self.SMALL + ["--max-attempts", "2"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "quarantined" in err
        assert "Traceback" not in err

    def test_supervision_report_written(self, tmp_path, capsys):
        target = tmp_path / "supervision.json"
        faults.install_faults(
            [faults.FaultSpec(kind="raise", label="*", fail_attempts=1)])
        rc = main(self.SMALL + ["--supervision-report", str(target)])
        assert rc == 0
        parsed = json.loads(target.read_text())
        assert parsed["retries"] >= 1
        assert parsed["quarantined"] == {}

    def test_wall_summary_flags_retries(self, capsys):
        faults.install_faults(
            [faults.FaultSpec(kind="raise", label="*", fail_attempts=1)])
        assert main(self.SMALL + ["--wall-summary"]) == 0
        out = capsys.readouterr().out
        assert "retried attempt(s)" in out
        assert "supervision:" in out

    def test_governance_flags_parse(self):
        args = build_parser().parse_args(
            self.SMALL + ["--max-rss-mb", "512",
                          "--cache-max-bytes", "1048576"])
        assert args.max_rss_mb == 512.0
        assert args.cache_max_bytes == 1048576

    def test_rss_budget_breach_exits_one_with_quarantine(self, tmp_path,
                                                         capsys):
        faults.install_faults(
            [faults.FaultSpec(kind=faults.KIND_RSS_SPIKE, rss_mb=99999.0)])
        target = tmp_path / "governance.json"
        rc = main(self.SMALL + ["--max-rss-mb", "512",
                                "--forensics-dir", str(tmp_path / "bundles"),
                                "--supervision-report", str(target)])
        assert rc == 1
        err = capsys.readouterr().err
        assert "quarantined" in err
        assert "Traceback" not in err
        parsed = json.loads(target.read_text())
        assert parsed["failures"].get("resource", 0) >= 1
        assert parsed["retries"] == 0  # deterministic failure: no retry
        assert parsed["quarantined"]
        for message in parsed["quarantined"].values():
            assert "ResourceBudgetExceeded" in message
        # Satellite: forensics bundle paths ride along in the report.
        assert parsed["forensics"]
        for bundle in parsed["forensics"].values():
            assert bundle.endswith(".json")

    def test_generous_rss_budget_is_invisible(self, capsys):
        assert main(self.SMALL + ["--max-rss-mb", "1000000"]) == 0

    def test_supervision_report_json_to_stdout(self, capsys):
        # The literal value 'json' prints the machine-readable report to
        # stdout — the same schema the file mode writes and the serve
        # layer's /healthz embeds.
        faults.install_faults(
            [faults.FaultSpec(kind="raise", label="*", fail_attempts=1)])
        assert main(self.SMALL + ["--supervision-report", "json"]) == 0
        out = capsys.readouterr().out
        start = out.index("{")
        parsed = json.loads(out[start:out.rindex("}") + 1])
        assert parsed["retries"] >= 1
        assert set(parsed) >= {"retries", "requeues", "quarantined",
                               "failures", "attempts", "forensics"}


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--cache-dir", "/tmp/c"])
        assert args.host == "127.0.0.1"
        assert args.port == 8642
        assert args.workers == 1
        assert args.max_queue_depth == 8
        assert args.deadline == 30.0

    def test_cache_dir_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_cache_quota_flag_parses(self):
        args = build_parser().parse_args(
            ["serve", "--cache-dir", "/tmp/c",
             "--cache-max-bytes", "2097152"])
        assert args.cache_max_bytes == 2097152


class TestCacheCommand:
    def test_gc_dry_run_then_real(self, tmp_path, capsys):
        from repro.harness.faults import corrupt_cache_entry
        from repro.harness.result_cache import ResultCache

        cache = ResultCache(tmp_path)
        good, bad = "aa" + "0" * 62, "bb" + "1" * 62
        cache.put(good, {"keep": True})
        cache.put(bad, {"doomed": True})
        corrupt_cache_entry(cache, bad, mode="bitflip")
        assert cache.get(bad) is None  # quarantined on read

        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would remove 1" in out
        assert cache.quarantined_entries() == 1  # dry run touched nothing

        assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "removed 1" in out and "kept 1" in out
        assert cache.quarantined_entries() == 0
        assert cache.get(good) is not None

    def test_gc_quota_dry_run_matches_real_reclaim(self, tmp_path, capsys):
        from repro.harness.result_cache import ResultCache

        cache = ResultCache(tmp_path)
        keys = ["aa" + "0" * 62, "bb" + "1" * 62, "cc" + "2" * 62]
        for key in keys:
            cache.put(key, {"v": "x" * 64})
        size = cache.entry_path(keys[0]).stat().st_size
        quota = 2 * size

        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-bytes", str(quota), "--dry-run"]) == 0
        dry_out = capsys.readouterr().out
        assert "would remove" in dry_out
        assert "evicted over quota" in dry_out
        assert f"[{size} B]" in dry_out
        assert len(cache) == 3  # dry run touched nothing

        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-bytes", str(quota)]) == 0
        real_out = capsys.readouterr().out
        # Acceptance criterion: the dry run's byte totals match what the
        # real sweep actually reclaimed.
        assert f"1 evicted over quota [{size} B]" in dry_out
        assert f"1 evicted over quota [{size} B]" in real_out
        assert len(cache) == 2


class TestReportCommand:
    def test_report_to_stdout(self, capsys):
        rc = main(["report", "--experiments", "fig5", "--pairs", "HS.MM",
                   "--scale", "0.1", "--warps", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "## fig5" in out and "| pair |" in out

    def test_report_to_file(self, capsys, tmp_path):
        target = tmp_path / "report.md"
        rc = main(["report", "--experiments", "fig5", "--pairs", "HS.MM",
                   "--scale", "0.1", "--warps", "2",
                   "--output", str(target)])
        assert rc == 0
        assert "## fig5" in target.read_text()
        assert "wrote" in capsys.readouterr().out
