"""Edge-case and property tests for the GPU assembly and coalescer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.config import GpuConfig
from repro.engine.simulator import Simulator
from repro.gpu.coalescer import Coalescer
from repro.gpu.gpu import Gpu
from repro.gpu.warp import WarpOp
from repro.vm.address import AddressLayout


def make_gpu(config=None, tenants=(0, 1)):
    sim = Simulator()
    cfg = config or GpuConfig.baseline(num_sms=4)
    gpu = Gpu(sim, cfg, list(tenants))
    for t in tenants:
        gpu.add_tenant(t)
    return sim, gpu


class TestTranslationMshrs:
    def test_mshr_overflow_stalls_then_drains(self):
        """More concurrent cold pages than translation MSHRs: the excess
        waits in the overflow queue but everything completes."""
        import dataclasses
        cfg = GpuConfig.baseline(num_sms=2)
        l1_tlb = dataclasses.replace(cfg.sm.l1_tlb, mshr_entries=2)
        cfg = dataclasses.replace(
            cfg, sm=dataclasses.replace(cfg.sm, l1_tlb=l1_tlb,
                                        max_outstanding_mem=16))
        sim, gpu = make_gpu(cfg, tenants=(0,))
        # one warp with an 8-page divergent op: 8 translations at once
        op = WarpOp(0, [(p * 1000 + 1) << 12 for p in range(8)])
        done = []
        gpu.tenants[0].on_complete = lambda: done.append(sim.now)
        gpu.launch_warps(0, [iter([op])])
        sim.drain()
        assert done
        assert sim.stats.counter("l1tlb.sm0.mshr_stalls").value > 0
        assert sim.stats.counter("pws.completed.tenant0").value == 8


class TestMaskIntegration:
    def test_pte_bypass_routes_walker_to_dram(self):
        sim, gpu = make_gpu(GpuConfig.baseline(num_sms=4).with_policy("mask"))
        # force bypass for tenant 0 and observe DRAM-only walker traffic
        gpu.mask._pte_bypass[0] = True
        l2_misses_before = sim.stats.counter("l2c.misses").value
        dram_before = sim.stats.counter("dram.accesses").value
        gpu.launch_warps(0, [iter([WarpOp(0, [0x123456000])])])
        sim.drain()
        assert sim.stats.counter("dram.accesses").value > dram_before
        # PT reads skipped the L2 cache: its misses moved only due to the
        # data access (1 line), not the 4 PTE reads
        assert sim.stats.counter("l2c.misses").value - l2_misses_before <= 1

    def test_denied_fill_keeps_l2_tlb_clean(self):
        sim, gpu = make_gpu(GpuConfig.baseline(num_sms=4).with_policy("mask"))
        gpu.mask._tokens[0] = 0  # exhaust tenant 0's fill tokens
        gpu.launch_warps(0, [iter([WarpOp(0, [0x7000])])])
        sim.drain()
        assert gpu.l2_tlb_for(0).resident(0) == 0
        # the L1 TLB still got the translation
        assert sim.stats.counter("l1tlb.sm0.evictions").value == 0
        assert gpu.l1_tlbs[0].resident(0) == 1


class TestSeparateSubsystemStats:
    def test_per_tenant_subsystem_namespacing(self):
        cfg = GpuConfig.baseline(num_sms=4).with_separate_tlb_and_walkers()
        sim, gpu = make_gpu(cfg)
        gpu.launch_warps(0, [iter([WarpOp(0, [0x1000])])])
        gpu.launch_warps(1, [iter([WarpOp(0, [0x1000])])])
        sim.drain()
        assert sim.stats.counter("pws.t0.completed.tenant0").value == 1
        assert sim.stats.counter("pws.t1.completed.tenant1").value == 1


class TestCoalescerProperties:
    layout = AddressLayout(page_size_bits=12)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 1 << 24), min_size=1, max_size=32))
    def test_one_entry_per_unique_page(self, addrs):
        c = Coalescer(self.layout, line_bytes=128)
        result = c.coalesce(addrs)
        pages = [p for p, _ in result]
        assert pages == sorted(set(self.layout.vpn(a) for a in addrs))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 1 << 24), min_size=1, max_size=32))
    def test_representative_on_its_page(self, addrs):
        c = Coalescer(self.layout, line_bytes=128)
        for page, rep in c.coalesce(addrs):
            assert self.layout.vpn(rep) == page
            assert rep % 128 == 0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=32))
    def test_unique_counts_consistent(self, addrs):
        c = Coalescer(self.layout, line_bytes=128)
        assert c.unique_pages(addrs) <= c.unique_lines(addrs) <= len(addrs)


class TestWritePath:
    def test_store_reaches_memory_and_completes(self):
        sim, gpu = make_gpu()
        done = []
        gpu.tenants[0].on_complete = lambda: done.append(sim.now)
        gpu.launch_warps(0, [iter([WarpOp(1, [0x9000], is_write=True)])])
        sim.drain()
        assert done
        # write-allocate: the line is resident and dirty in the L1 cache
        paddr_line_present = gpu.memory.l1s[0].resident_lines()
        assert paddr_line_present == 1
