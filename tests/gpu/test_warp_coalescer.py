"""Tests for warps and the coalescer."""

import pytest

from repro.gpu.coalescer import Coalescer
from repro.gpu.warp import Warp, WarpOp
from repro.vm.address import AddressLayout


class TestWarpOp:
    def test_instruction_counting(self):
        assert WarpOp(compute=5, addrs=[0x100]).instructions == 6
        assert WarpOp(compute=5).instructions == 5  # pure compute

    def test_rejects_negative_compute(self):
        with pytest.raises(ValueError):
            WarpOp(compute=-1)


class TestWarp:
    def test_stream_exhaustion_sets_done(self):
        warp = Warp(0, tenant_id=1, stream=iter([WarpOp(1), WarpOp(2)]))
        assert warp.next_op().compute == 1
        assert warp.next_op().compute == 2
        assert not warp.done
        assert warp.next_op() is None
        assert warp.done


class TestCoalescer:
    layout = AddressLayout(page_size_bits=12)

    def make(self):
        return Coalescer(self.layout, line_bytes=128)

    def test_same_line_coalesces_to_one(self):
        c = self.make()
        addrs = [0x1000 + i * 4 for i in range(32)]  # one 128B line
        assert c.coalesce(addrs) == [(1, 0x1000)]

    def test_same_page_different_lines_one_page(self):
        c = self.make()
        addrs = [0x1000, 0x1080, 0x1100]
        result = c.coalesce(addrs)
        assert len(result) == 1          # one page entry
        assert result[0][0] == 1

    def test_divergent_access_hits_many_pages(self):
        c = self.make()
        addrs = [0x1000, 0x5000, 0x9000]
        pages = [p for p, _ in c.coalesce(addrs)]
        assert pages == [1, 5, 9]

    def test_representative_is_line_aligned(self):
        c = self.make()
        [(page, rep)] = c.coalesce([0x10A7])
        assert rep % 128 == 0
        assert self.layout.vpn(rep) == page

    def test_unique_counts(self):
        c = self.make()
        addrs = [0x1000, 0x1004, 0x1080, 0x2000]
        assert c.unique_lines(addrs) == 3
        assert c.unique_pages(addrs) == 2
