"""Tests for the SM issue/memory model against a stub GPU."""

import pytest

from repro.engine.config import GpuConfig
from repro.engine.simulator import Simulator
from repro.gpu.coalescer import Coalescer
from repro.gpu.sm import Sm
from repro.gpu.warp import Warp, WarpOp
from repro.vm.address import AddressLayout


class StubGpu:
    """Completes memory ops after a fixed latency and counts everything."""

    def __init__(self, sim, mem_latency=100):
        self.sim = sim
        self.mem_latency = mem_latency
        self.instructions = {}
        self.mem_ops = []
        self.done_warps = []

    def access_memory(self, sm_id, tenant_id, vaddr, is_write, on_done):
        self.mem_ops.append((self.sim.now, vaddr))
        self.sim.after(self.mem_latency, on_done)

    def access_burst(self, sm_id, tenant_id, accesses, is_write, on_done):
        for _page, addr in accesses:
            self.access_memory(sm_id, tenant_id, addr, is_write, on_done)

    def count_instructions(self, tenant_id, count):
        self.instructions[tenant_id] = self.instructions.get(tenant_id, 0) + count

    def note_warp_done(self, sm_id, warp):
        self.done_warps.append((self.sim.now, warp.warp_id))


def make_sm(mem_latency=100, max_outstanding=2):
    sim = Simulator()
    cfg = GpuConfig.baseline(num_sms=1)
    sm_cfg = cfg.sm
    object.__setattr__(sm_cfg, "__class__", sm_cfg.__class__)  # no-op; keep frozen
    import dataclasses
    sm_cfg = dataclasses.replace(sm_cfg, max_outstanding_mem=max_outstanding)
    gpu = StubGpu(sim, mem_latency)
    layout = AddressLayout(page_size_bits=12)
    sm = Sm(sim, 0, sm_cfg, gpu, Coalescer(layout, 128))
    return sim, sm, gpu


def test_single_warp_runs_to_completion():
    sim, sm, gpu = make_sm()
    ops = [WarpOp(compute=4, addrs=[0x1000]), WarpOp(compute=2, addrs=[0x2000])]
    sm.add_warp(Warp(0, 0, iter(ops)))
    sim.drain()
    assert len(gpu.done_warps) == 1
    assert gpu.instructions[0] == 5 + 3
    assert len(gpu.mem_ops) == 2


def test_pure_compute_warp_counts_instructions():
    sim, sm, gpu = make_sm()
    sm.add_warp(Warp(0, 0, iter([WarpOp(compute=10)])))
    sim.drain()
    assert gpu.instructions[0] == 10
    assert gpu.mem_ops == []


def test_issue_port_serializes_warps():
    """Two warps of pure compute share 1 instr/cycle of issue bandwidth."""
    sim, sm, gpu = make_sm()
    sm.add_warp(Warp(0, 0, iter([WarpOp(compute=10)])))
    sm.add_warp(Warp(1, 0, iter([WarpOp(compute=10)])))
    sim.drain()
    # 20 instructions at 1 IPC: last warp retires at cycle >= 20
    assert max(t for t, _ in gpu.done_warps) >= 20


def test_memory_latency_overlaps_with_other_warp_issue():
    sim, sm, gpu = make_sm(mem_latency=500)
    sm.add_warp(Warp(0, 0, iter([WarpOp(compute=1, addrs=[0x1000])])))
    sm.add_warp(Warp(1, 0, iter([WarpOp(compute=200)])))
    sim.drain()
    done = dict((w, t) for t, w in gpu.done_warps)
    # warp 1's compute finished while warp 0 waited on memory
    assert done[1] < done[0]


def test_outstanding_mem_bounded_by_mshrs():
    sim, sm, gpu = make_sm(mem_latency=1000, max_outstanding=2)
    for i in range(4):
        sm.add_warp(Warp(i, 0, iter([WarpOp(compute=0, addrs=[0x1000 * (i + 1)])])))
    sim.run(until=500)
    assert sm.outstanding_mem == 2
    assert sm.waiting_mem_ops == 2
    sim.drain()
    assert sm.outstanding_mem == 0
    assert len(gpu.done_warps) == 4


def test_divergent_op_issues_one_access_per_page():
    sim, sm, gpu = make_sm()
    op = WarpOp(compute=0, addrs=[0x1000, 0x5000, 0x9000])
    sm.add_warp(Warp(0, 0, iter([op])))
    sim.drain()
    assert len(gpu.mem_ops) == 3
    assert len(gpu.done_warps) == 1  # completes only after all 3 return


def test_join_releases_warp_after_last_access():
    """The countdown join completes the op exactly once, when the final
    coalesced access returns — staggered completions must not release
    the warp early or double-complete it."""
    from repro.gpu.sm import _Join

    sim, sm, gpu = make_sm()
    completed = []
    sm._mem_complete = lambda warp: completed.append((sim.now, warp))
    warp = Warp(0, 0, iter([]))
    join = _Join(sm, warp, 3)
    join()
    join()
    assert completed == []
    join()
    assert completed == [(sim.now, warp)]


def test_divergent_op_completes_once_via_join():
    """A multi-page op with staggered per-access latencies retires its
    warp once, after the slowest access."""
    sim, sm, gpu = make_sm()
    delays = iter([30, 300, 100])

    def staggered(sm_id, tenant_id, vaddr, is_write, on_done):
        gpu.mem_ops.append((sim.now, vaddr))
        sim.after(next(delays), on_done)

    gpu.access_memory = staggered
    # three distinct pages -> three coalesced accesses
    op = WarpOp(compute=1, addrs=[0x1000, 0x2000, 0x3000])
    sm.add_warp(Warp(0, 0, iter([op])))
    sim.drain()
    assert len(gpu.mem_ops) == 3
    assert len(gpu.done_warps) == 1
    issue_done = 1 + 1  # issue at cycle >= 1 after the compute stretch
    assert gpu.done_warps[0][0] >= issue_done + 300
