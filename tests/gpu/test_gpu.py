"""Integration tests for the assembled GPU."""

import pytest

from repro.engine.config import GpuConfig
from repro.engine.simulator import Simulator
from repro.gpu.gpu import Gpu
from repro.gpu.warp import WarpOp


def small_config(**kw):
    cfg = GpuConfig.baseline(num_sms=4)
    for name, value in kw.items():
        cfg = getattr(cfg, name)(value) if callable(getattr(cfg, name, None)) else cfg
    return cfg


def make_gpu(config=None, tenants=(0, 1)):
    sim = Simulator()
    cfg = config or GpuConfig.baseline(num_sms=4)
    gpu = Gpu(sim, cfg, list(tenants))
    for t in tenants:
        gpu.add_tenant(t)
    return sim, gpu


def stream(ops):
    return iter(ops)


class TestAssembly:
    def test_sm_partitioning_two_tenants(self):
        sim, gpu = make_gpu()
        assert gpu.tenants[0].sm_ids == [0, 1]
        assert gpu.tenants[1].sm_ids == [2, 3]

    def test_sm_partitioning_three_tenants_uneven(self):
        sim, gpu = make_gpu(tenants=(0, 1, 2))
        sizes = [len(gpu.tenants[t].sm_ids) for t in (0, 1, 2)]
        assert sorted(sizes) == [1, 1, 2]
        covered = sorted(sm for t in (0, 1, 2) for sm in gpu.tenants[t].sm_ids)
        assert covered == [0, 1, 2, 3]

    def test_shared_l2_tlb_by_default(self):
        sim, gpu = make_gpu()
        assert gpu.l2_tlb_for(0) is gpu.l2_tlb_for(1)
        assert gpu.walk_subsystem_for(0) is gpu.walk_subsystem_for(1)

    def test_s_tlb_separates_tlbs_only(self):
        sim, gpu = make_gpu(GpuConfig.baseline(num_sms=4).with_separate_tlb())
        assert gpu.l2_tlb_for(0) is not gpu.l2_tlb_for(1)
        assert gpu.walk_subsystem_for(0) is gpu.walk_subsystem_for(1)

    def test_s_tlb_ptw_separates_both(self):
        cfg = GpuConfig.baseline(num_sms=4).with_separate_tlb_and_walkers()
        sim, gpu = make_gpu(cfg)
        assert gpu.l2_tlb_for(0) is not gpu.l2_tlb_for(1)
        assert gpu.walk_subsystem_for(0) is not gpu.walk_subsystem_for(1)

    def test_undeclared_tenant_rejected(self):
        sim = Simulator()
        gpu = Gpu(sim, GpuConfig.baseline(num_sms=4), [0])
        with pytest.raises(ValueError):
            gpu.add_tenant(3)


class TestDatapath:
    def test_warp_completes_and_counts_instructions(self):
        sim, gpu = make_gpu()
        done = []
        gpu.tenants[0].on_complete = lambda: done.append(sim.now)
        gpu.launch_warps(0, [stream([WarpOp(3, [0x1000]), WarpOp(2, [0x2000])])])
        sim.drain()
        assert done
        assert gpu.tenants[0].instructions == 4 + 3

    def test_first_access_walks_then_l1_tlb_hits(self):
        sim, gpu = make_gpu()
        gpu.launch_warps(0, [stream([WarpOp(0, [0x1000]), WarpOp(0, [0x1008])])])
        sim.drain()
        assert sim.stats.counter("gpu.l2tlb_misses.tenant0").value == 1
        assert sim.stats.counter("pws.completed.tenant0").value == 1
        # the second access hit in the L1 TLB
        assert sim.stats.counter("l1tlb.sm0.hits").value == 1

    def test_l2_tlb_shared_across_sms_of_same_tenant(self):
        sim, gpu = make_gpu()
        # two warps on different SMs touch the same page sequentially
        gpu.launch_warps(0, [stream([WarpOp(0, [0x1000])])])
        sim.drain()
        walks_before = sim.stats.counter("pws.completed.tenant0").value
        gpu.launch_warps(0, [stream([WarpOp(0, [0x1000])]),
                             stream([WarpOp(0, [0x1000])])])
        sim.drain()
        # no further walks: SM1's L1 miss was satisfied by the shared L2 TLB
        assert sim.stats.counter("pws.completed.tenant0").value == walks_before

    def test_tenants_use_disjoint_page_tables(self):
        sim, gpu = make_gpu()
        gpu.launch_warps(0, [stream([WarpOp(0, [0x1000])])])
        gpu.launch_warps(1, [stream([WarpOp(0, [0x1000])])])
        sim.drain()
        # same virtual page, but each tenant had to walk its own table
        assert sim.stats.counter("pws.completed.tenant0").value == 1
        assert sim.stats.counter("pws.completed.tenant1").value == 1

    def test_duplicate_inflight_translations_merge(self):
        sim, gpu = make_gpu()
        # two warps on the same SM touch the same cold page concurrently
        gpu.launch_warps(0, [stream([WarpOp(0, [0x7000])]),
                             stream([WarpOp(0, [0x7000])])])
        sim.drain()
        assert sim.stats.counter("pws.completed.tenant0").value == 1

    def test_instructions_attributed_to_right_tenant(self):
        sim, gpu = make_gpu()
        gpu.launch_warps(0, [stream([WarpOp(10, [0x1000])])])
        gpu.launch_warps(1, [stream([WarpOp(20, [0x1000])])])
        sim.drain()
        assert gpu.tenants[0].instructions == 11
        assert gpu.tenants[1].instructions == 21


class TestPolicyIntegration:
    def run_burst(self, policy_name):
        cfg = GpuConfig.baseline(num_sms=4).with_policy(policy_name)
        sim, gpu = make_gpu(cfg)
        # tenant 0: many warps, each divergent across distant pages, so
        # walks queue up well beyond tenant 0's walker share
        streams = []
        for w in range(12):
            ops = [
                WarpOp(0, [(1 + w * 97 + i * 13 + k * 7919) << 12
                           for k in range(4)])
                for i in range(8)
            ]
            streams.append(stream(ops))
        gpu.launch_warps(0, streams)
        gpu.launch_warps(1, [stream([WarpOp(0, [p << 12]) for p in range(1, 6)])])
        sim.drain()
        return sim, gpu

    @pytest.mark.parametrize("policy", ["baseline", "static", "dws", "dwspp",
                                        "mask", "mask+dws"])
    def test_all_policies_run_to_completion(self, policy):
        sim, gpu = self.run_burst(policy)
        t0 = sim.stats.counter("pws.completed.tenant0").value
        t1 = sim.stats.counter("pws.completed.tenant1").value
        assert t0 > 0 and t1 > 0

    def test_dws_records_steals(self):
        sim, gpu = self.run_burst("dws")
        stolen = sim.stats.get("pws.stolen.tenant0")
        # tenant 0 overflows its own walkers; tenant 1's walkers steal
        assert stolen is not None and stolen.value > 0


class TestMaskIntegration:
    def test_mask_controller_present_only_for_mask(self):
        sim, gpu = make_gpu(GpuConfig.baseline(num_sms=4).with_policy("mask"))
        assert gpu.mask is not None
        sim2, gpu2 = make_gpu(GpuConfig.baseline(num_sms=4))
        assert gpu2.mask is None

    def test_mask_observes_l2_lookups(self):
        sim, gpu = make_gpu(GpuConfig.baseline(num_sms=4).with_policy("mask"))
        gpu.launch_warps(0, [stream([WarpOp(0, [0x1000])])])
        sim.drain()
        assert gpu.mask._lookups_this_epoch > 0
