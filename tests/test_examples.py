"""Smoke tests: every example script runs end-to-end at tiny scale.

Examples are the first thing a new user touches; these tests keep them
from rotting.  Each runs in-process with a patched ``sys.argv`` so the
scripts' argparse sees a minimal-work configuration.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

pytestmark = pytest.mark.slow  # each takes a few seconds of simulation


def run_example(name, *argv):
    old_argv = sys.argv
    sys.argv = [name] + list(argv)
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_example_files_exist():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert scripts == [
        "capacity_planning.py",
        "cloud_consolidation.py",
        "dynamic_tenants.py",
        "fairness_tuning.py",
        "quickstart.py",
        "seed_stability.py",
        "walk_trace_analysis.py",
    ]


def test_quickstart(capsys):
    run_example("quickstart.py", "--scale", "0.1")
    out = capsys.readouterr().out
    assert "DWS throughput speedup" in out


def test_cloud_consolidation(capsys):
    run_example("cloud_consolidation.py", "--scale", "0.08")
    out = capsys.readouterr().out
    assert "verdict" in out and ("pack" in out or "isolate" in out)


def test_fairness_tuning(capsys):
    run_example("fairness_tuning.py", "--scale", "0.08", "--pair", "GUPS.MM")
    out = capsys.readouterr().out
    assert "dws++ aggressive" in out


def test_capacity_planning(capsys):
    run_example("capacity_planning.py", "--scale", "0.08", "--pair",
                "GUPS.MM")
    out = capsys.readouterr().out
    assert "16 walkers" in out


def test_dynamic_tenants(capsys):
    run_example("dynamic_tenants.py")
    out = capsys.readouterr().out
    assert "tenant 1 arrives" in out
    assert "no walk was lost" in out


def test_walk_trace_analysis(capsys):
    run_example("walk_trace_analysis.py", "--scale", "0.1")
    out = capsys.readouterr().out
    assert "traced" in out and "walk latency" in out


def test_seed_stability(capsys):
    run_example("seed_stability.py", "--scale", "0.05", "--seeds", "2",
                "--pair", "GUPS.MM")
    out = capsys.readouterr().out
    assert "mean speedup" in out and "direction" in out
