"""Chaos suite: deterministic fault injection against the supervised
campaign stack.

Every scenario asserts the same invariant the ISSUE states: with
injected worker crashes, hangs past the deadline, transient exceptions,
corrupted cache entries, and mid-campaign kills, a campaign either
completes with tables *byte-identical* to a fault-free run, or resumes
from its checkpoint re-executing only the unfinished jobs.
"""

import pytest

from repro.engine.config import GpuConfig
from repro.harness import faults
from repro.harness.campaign import plan_campaign, run_campaign
from repro.harness.parallel import Job, run_jobs
from repro.harness.reporting import format_table
from repro.harness.runner import Session
from repro.harness.supervision import (
    CampaignExecutionError,
    RetryPolicy,
    SupervisionPolicy,
    SupervisionStats,
)

SCALE = 0.05
WARPS = 2
FIGURES = ["fig5"]
PAIRS = ["HS.MM", "FFT.HS"]

#: Fast-failing policy for in-process scenarios.
QUICK = SupervisionPolicy(retry=RetryPolicy(max_attempts=3,
                                            base_delay=0.001))


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear_faults()
    yield
    faults.clear_faults()


def small_session(tmp_path=None):
    return Session(scale=SCALE, warps_per_sm=WARPS, seed=0,
                   cache_dir=None if tmp_path is None else str(tmp_path))


def tiny_job(label, pair="HS.MM", seed=0):
    return Job(label=label, names=tuple(pair.split(".")),
               config=GpuConfig.baseline(num_sms=2), scale=SCALE,
               warps_per_sm=WARPS, seed=seed)


def fault_free_tables():
    report = run_campaign(small_session(), FIGURES, pairs=PAIRS, workers=1)
    assert report.ok
    return {f: format_table(r) for f, r in report.results.items()}


def planned_labels():
    plan = plan_campaign(small_session(), FIGURES, pairs=PAIRS)
    return [job.label for job in plan.jobs.values()]


class TestTransientFaults:
    def test_every_job_failing_once_still_matches_fault_free(self):
        expected = fault_free_tables()
        faults.install_faults(
            [faults.FaultSpec(kind="raise", label="*", fail_attempts=1)])
        report = run_campaign(small_session(), FIGURES, pairs=PAIRS,
                              workers=1, supervision=QUICK)
        got = {f: format_table(r) for f, r in report.results.items()}
        assert got == expected
        assert report.ok
        assert report.supervision.retries == report.plan.unique_jobs
        assert all(r.retries == 1 for r in report.job_results.values())

    def test_poison_job_is_quarantined_not_fatal(self):
        expected = fault_free_tables()
        labels = planned_labels()
        faults.install_faults(
            [faults.FaultSpec(kind="raise", label=labels[0],
                              fail_attempts=99)])
        report = run_campaign(small_session(), FIGURES, pairs=PAIRS,
                              workers=1, supervision=QUICK)
        assert labels[0] in report.quarantined
        assert not report.ok
        # The figure still replayed (the missing job re-simulated on
        # demand, outside the fault-instrumented dispatch layer), so the
        # tables survive even a quarantine.
        assert not report.figure_errors
        assert {f: format_table(r) for f, r in report.results.items()} \
            == expected

    def test_strict_campaign_raises_on_quarantine(self):
        labels = planned_labels()
        faults.install_faults(
            [faults.FaultSpec(kind="raise", label=labels[0],
                              fail_attempts=99)])
        with pytest.raises(CampaignExecutionError) as excinfo:
            run_campaign(small_session(), FIGURES, pairs=PAIRS, workers=1,
                         supervision=QUICK, strict=True)
        assert labels[0] in excinfo.value.quarantined

    def test_unsupervised_run_jobs_still_raises(self):
        # supervision=None keeps the PR-2 contract: first failure
        # propagates to the caller.
        faults.install_faults(
            [faults.FaultSpec(kind="raise", label="*", fail_attempts=1)])
        from repro.harness.parallel import _execute_attempt

        with pytest.raises(faults.InjectedFault):
            _execute_attempt(tiny_job("a"), 1)


class TestWorkerCrash:
    def test_crashed_worker_respawns_and_completes(self):
        jobs = [tiny_job("a"), tiny_job("b", pair="FFT.HS"),
                tiny_job("c", seed=1)]
        clean = run_jobs(jobs, workers=1)
        faults.install_faults(
            [faults.FaultSpec(kind="crash", label="a", fail_attempts=1)])
        stats = SupervisionStats()
        policy = SupervisionPolicy(
            retry=RetryPolicy(max_attempts=4, base_delay=0.001))
        try:
            survived = run_jobs(jobs, workers=2, supervision=policy,
                                stats=stats)
        except (OSError, PermissionError):
            pytest.skip("process creation not permitted in this environment")
        assert stats.pool_respawns >= 1
        assert stats.failures.get("worker", 0) >= 1
        assert set(survived) == set(clean)
        for label in clean:
            assert survived[label].total_cycles == clean[label].total_cycles

    def test_crash_in_serial_fallback_is_survivable(self):
        # On the in-process path a "crash" degrades to an exception
        # (InjectedWorkerCrash) — retried like any failure, and the
        # harness itself must obviously survive.
        faults.install_faults(
            [faults.FaultSpec(kind="crash", label="a", fail_attempts=1)])
        stats = SupervisionStats()
        results = run_jobs([tiny_job("a")], workers=1, supervision=QUICK,
                           stats=stats)
        assert results["a"].total_cycles > 0
        assert stats.retries == 1
        assert stats.failures == {"worker": 1}


class TestHangWatchdog:
    def test_hung_job_is_killed_and_retried(self):
        jobs = [tiny_job("a"), tiny_job("b", pair="FFT.HS")]
        clean = run_jobs(jobs, workers=1)
        faults.install_faults(
            [faults.FaultSpec(kind="hang", label="a", fail_attempts=1,
                              hang_seconds=60.0)])
        stats = SupervisionStats()
        policy = SupervisionPolicy(
            retry=RetryPolicy(max_attempts=3, base_delay=0.001),
            job_deadline=1.5)
        try:
            survived = run_jobs(jobs, workers=2, supervision=policy,
                                stats=stats)
        except (OSError, PermissionError):
            pytest.skip("process creation not permitted in this environment")
        assert stats.timeouts == 1
        assert stats.pool_respawns >= 1
        assert stats.failures.get("timeout") == 1
        for label in clean:
            assert survived[label].total_cycles == clean[label].total_cycles


class TestCompositeChaos:
    def test_crash_hang_transient_together_match_fault_free(self):
        """The acceptance scenario: several fault classes in one
        campaign, tables byte-identical to the fault-free run."""
        expected = fault_free_tables()
        labels = planned_labels()
        faults.install_faults([
            faults.FaultSpec(kind="crash", label=labels[0],
                             fail_attempts=1),
            faults.FaultSpec(kind="hang", label=labels[1],
                             fail_attempts=1, hang_seconds=60.0),
            faults.FaultSpec(kind="raise", label=labels[2],
                             fail_attempts=1),
        ])
        policy = SupervisionPolicy(
            retry=RetryPolicy(max_attempts=5, base_delay=0.001),
            job_deadline=2.0)
        try:
            report = run_campaign(small_session(), FIGURES, pairs=PAIRS,
                                  workers=2, supervision=policy)
        except (OSError, PermissionError):
            pytest.skip("process creation not permitted in this environment")
        assert report.ok, report.supervision.summary()
        got = {f: format_table(r) for f, r in report.results.items()}
        assert got == expected
        assert report.supervision.retries >= 1
        assert report.supervision.pool_respawns >= 1


class TestCorruptedCache:
    def _one_entry(self, cache):
        paths = sorted(cache.root.glob("*/*.pkl"))
        assert paths, "expected at least one cache entry"
        return paths[0]

    def test_truncated_entry_recomputes_byte_identically(self, tmp_path):
        expected = fault_free_tables()
        cold = run_campaign(small_session(tmp_path), FIGURES, pairs=PAIRS,
                            workers=1)
        assert cold.ok
        cache = small_session(tmp_path).disk_cache
        faults.truncate_file(self._one_entry(cache), keep_bytes=20)

        session = small_session(tmp_path)
        warm = run_campaign(session, FIGURES, pairs=PAIRS, workers=1)
        assert warm.ok
        assert warm.simulated == 1          # only the torn entry re-ran
        assert session.disk_cache.corrupt == 1
        assert warm.supervision.failures.get("cache") == 1
        assert {f: format_table(r) for f, r in warm.results.items()} \
            == expected

    def test_bitflipped_entry_recomputes_byte_identically(self, tmp_path):
        expected = fault_free_tables()
        run_campaign(small_session(tmp_path), FIGURES, pairs=PAIRS,
                     workers=1)
        cache = small_session(tmp_path).disk_cache
        faults.bitflip_file(self._one_entry(cache))

        warm = run_campaign(small_session(tmp_path), FIGURES, pairs=PAIRS,
                            workers=1)
        assert warm.ok
        assert warm.simulated == 1
        assert {f: format_table(r) for f, r in warm.results.items()} \
            == expected


class TestMidCampaignKill:
    def test_interrupted_campaign_resumes_from_checkpoint(self, tmp_path):
        expected = fault_free_tables()
        faults.install_faults(
            [faults.FaultSpec(kind="interrupt", after_results=2)])
        with pytest.raises(KeyboardInterrupt):
            run_campaign(small_session(tmp_path), FIGURES, pairs=PAIRS,
                         workers=1)
        faults.clear_faults()

        resumed = run_campaign(small_session(tmp_path), FIGURES,
                               pairs=PAIRS, workers=1)
        # Only the unfinished jobs re-executed; the two that completed
        # before the kill came back from cache + checkpoint.
        assert resumed.resumed_from_checkpoint == 2
        assert resumed.cache_hits == 2
        assert resumed.simulated == resumed.plan.unique_jobs - 2
        assert {f: format_table(r) for f, r in resumed.results.items()} \
            == expected

    def test_checkpoint_scopes_to_campaign_identity(self, tmp_path):
        faults.install_faults(
            [faults.FaultSpec(kind="interrupt", after_results=1)])
        with pytest.raises(KeyboardInterrupt):
            run_campaign(small_session(tmp_path), FIGURES, pairs=PAIRS,
                         workers=1)
        faults.clear_faults()
        # A different campaign (other pair subset) starts its own
        # checkpoint; it must not claim the first one's progress.
        other = run_campaign(small_session(tmp_path), FIGURES,
                             pairs=["HS.MM"], workers=1)
        assert other.resumed_from_checkpoint == 0
