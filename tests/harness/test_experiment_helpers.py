"""Tests for experiment-construction helpers."""

import pytest

from repro.harness.experiments import (
    CLASS_ORDER,
    _append_class_means,
    _pairs,
    _sorted_by_class,
)
from repro.harness.reporting import ExperimentResult
from repro.workloads.pairs import WORKLOAD_PAIRS


class TestPairsHelper:
    def test_default_is_all_45(self):
        assert _pairs(None) == list(WORKLOAD_PAIRS)

    def test_subset_passthrough(self):
        assert _pairs(["HS.MM"]) == ["HS.MM"]


class TestSortedByClass:
    def test_orders_ll_first_hh_last(self):
        mixed = ["GUPS.SAD", "HS.MM", "BLK.3DS", "3DS.FFT"]
        ordered = _sorted_by_class(mixed)
        assert ordered == ["HS.MM", "3DS.FFT", "BLK.3DS", "GUPS.SAD"]

    def test_class_order_constant(self):
        assert CLASS_ORDER == ("LL", "ML", "MM", "HL", "HM", "HH")


class TestAppendClassMeans:
    def make_result(self):
        r = ExperimentResult("x", "t", columns=["pair", "class", "v"])
        r.add_row(pair="HS.MM", **{"class": "LL"}, v=1.0)
        r.add_row(pair="FFT.HS", **{"class": "LL"}, v=4.0)
        r.add_row(pair="GUPS.SAD", **{"class": "HH"}, v=2.0)
        return r

    def test_class_gmeans_added(self):
        r = self.make_result()
        _append_class_means(r, ["v"])
        ll = r.row_for(pair="gmean[LL]")
        assert ll["v"] == pytest.approx(2.0)  # gmean(1, 4)
        hh = r.row_for(pair="gmean[HH]")
        assert hh["v"] == pytest.approx(2.0)

    def test_overall_gmean_excludes_class_rows(self):
        r = self.make_result()
        _append_class_means(r, ["v"])
        overall = r.row_for(pair="gmean[all]")
        assert overall["v"] == pytest.approx((1.0 * 4.0 * 2.0) ** (1 / 3))

    def test_empty_classes_skipped(self):
        r = self.make_result()
        _append_class_means(r, ["v"])
        names = {row["pair"] for row in r.rows}
        assert "gmean[HM]" not in names
