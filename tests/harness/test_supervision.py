"""Unit tests for the supervision policy layer (no simulations)."""

import pytest

from repro.harness import faults
from repro.harness.supervision import (
    DOMAIN_CACHE,
    RetryPolicy,
    SupervisionPolicy,
    SupervisionStats,
)


class TestRetryPolicy:
    def test_delay_grows_exponentially(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=100.0, jitter=0.0)
        assert policy.delay_for(1) == pytest.approx(0.1)
        assert policy.delay_for(2) == pytest.approx(0.2)
        assert policy.delay_for(3) == pytest.approx(0.4)

    def test_delay_capped(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=2.0, jitter=0.0)
        assert policy.delay_for(10) == pytest.approx(2.0)

    def test_jitter_is_deterministic_per_key(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5)
        assert (policy.delay_for(2, key="HS/MM")
                == policy.delay_for(2, key="HS/MM"))

    def test_jitter_spreads_keys(self):
        # A herd of failed jobs must not retry in lockstep: across many
        # keys, at least two distinct delays appear.
        policy = RetryPolicy(base_delay=0.1, jitter=0.5)
        delays = {policy.delay_for(1, key=f"job{i}") for i in range(16)}
        assert len(delays) > 1
        assert all(d >= policy.base_delay for d in delays)

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.0)
        assert policy.delay_for(1, key="a") == policy.delay_for(1, key="b")

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay": -1.0},
        {"jitter": 1.5},
    ])
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestSupervisionPolicy:
    def test_defaults_are_sane(self):
        policy = SupervisionPolicy.default()
        assert policy.retry.max_attempts >= 2
        assert policy.job_deadline is None

    @pytest.mark.parametrize("kwargs", [
        {"job_deadline": 0.0},
        {"job_deadline": -5.0},
        {"max_pool_respawns": -1},
    ])
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SupervisionPolicy(**kwargs)


class TestSupervisionStats:
    def test_fresh_stats_are_ok(self):
        stats = SupervisionStats()
        assert stats.ok
        assert "retries 0" in stats.summary()

    def test_quarantine_flips_ok(self):
        stats = SupervisionStats()
        stats.quarantined["HS/MM"] = "boom"
        assert not stats.ok
        assert "quarantined 1" in stats.summary()

    def test_domains_reported(self):
        stats = SupervisionStats()
        stats.record_failure("worker")
        stats.record_failure("worker")
        stats.record_failure("timeout")
        assert stats.failures == {"worker": 2, "timeout": 1}
        assert "worker=2" in stats.summary()

    def test_cache_corruption_merged(self):
        stats = SupervisionStats()
        stats.merge_cache_corruption(2)
        stats.merge_cache_corruption(0)  # no-op
        assert stats.failures == {DOMAIN_CACHE: 2}

    def test_to_dict_round_trips_through_json(self):
        import json

        stats = SupervisionStats(retries=3, requeues=1, timeouts=1)
        stats.quarantined["a"] = "err"
        stats.attempts["a"] = 3
        parsed = json.loads(json.dumps(stats.to_dict()))
        assert parsed["retries"] == 3
        assert parsed["quarantined"] == {"a": "err"}


class TestFaultSpecs:
    def setup_method(self):
        faults.clear_faults()

    def teardown_method(self):
        faults.clear_faults()

    def test_specs_round_trip_through_environment(self):
        spec = faults.FaultSpec(kind="raise", label="HS/MM",
                                fail_attempts=2)
        faults.install_faults([spec])
        assert faults.faults_active()
        assert faults.active_specs() == (spec,)
        faults.clear_faults()
        assert not faults.faults_active()
        assert faults.active_specs() == ()

    def test_matching_is_attempt_bounded(self):
        spec = faults.FaultSpec(kind="raise", label="a", fail_attempts=2)
        assert spec.matches("a", 0)
        assert spec.matches("a", 1)
        assert not spec.matches("a", 2)   # retries eventually succeed
        assert not spec.matches("b", 0)   # other jobs untouched

    def test_wildcard_label(self):
        spec = faults.FaultSpec(kind="raise", label="*")
        assert spec.matches("anything", 0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            faults.FaultSpec(kind="meteor")

    def test_injection_raises_on_match_only(self):
        faults.install_faults(
            [faults.FaultSpec(kind="raise", label="a", fail_attempts=1)])
        with pytest.raises(faults.InjectedFault):
            faults.maybe_inject("a", 0)
        faults.maybe_inject("a", 1)  # retry attempt: clean
        faults.maybe_inject("b", 0)  # other job: clean

    def test_malformed_plan_is_ignored(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "{not json")
        assert faults.active_specs() == ()
        faults.maybe_inject("a", 0)  # must not raise

    def test_no_faults_is_cheap_noop(self):
        faults.maybe_inject("a", 0)
        faults.note_result()


class TestJobOutcome:
    def test_clean_job_is_ok(self):
        from repro.harness.supervision import OUTCOME_OK, job_outcome

        stats = SupervisionStats()
        stats.attempts["a"] = 1
        assert job_outcome(stats, "a") == OUTCOME_OK
        # Absent from the ledger (cache hit): also clean.
        assert job_outcome(stats, "never-ran") == OUTCOME_OK

    def test_retried_and_quarantined_ranked(self):
        from repro.harness.supervision import (OUTCOME_QUARANTINED,
                                               OUTCOME_RETRIED, job_outcome)

        stats = SupervisionStats()
        stats.attempts["r"] = 2
        stats.attempts["q"] = 3
        stats.quarantined["q"] = "boom"
        assert job_outcome(stats, "r") == OUTCOME_RETRIED
        # Quarantine dominates the retry history.
        assert job_outcome(stats, "q") == OUTCOME_QUARANTINED


class TestStatsToDict:
    def test_schema_and_json_portability(self):
        import json

        stats = SupervisionStats(retries=2, requeues=1, timeouts=1,
                                 pool_respawns=1, degraded_serial=True)
        stats.quarantined["j"] = "err"
        stats.failures["job"] = 2
        stats.attempts["j"] = 3
        stats.forensics["j"] = "/tmp/b.json"
        doc = stats.to_dict()
        assert json.loads(json.dumps(doc)) == doc
        assert doc["retries"] == 2
        assert doc["quarantined"] == {"j": "err"}
        assert doc["degraded_serial"] is True
        # Mutating the dict must not reach back into the stats.
        doc["quarantined"]["x"] = "y"
        assert "x" not in stats.quarantined
