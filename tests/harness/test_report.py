"""Tests for the Markdown report generator."""

import pytest

from repro.harness.report import generate_report, render_markdown
from repro.harness.reporting import ExperimentResult
from repro.harness.runner import Session


class TestRenderMarkdown:
    def make_result(self):
        r = ExperimentResult("figX", "demo", columns=["pair", "value"])
        r.add_row(pair="A.B", value=1.234)
        r.notes.append("shape holds")
        return r

    def test_contains_table_and_notes(self):
        text = render_markdown([self.make_result()], title="T")
        assert "# T" in text
        assert "## figX: demo" in text
        assert "| pair | value |" in text
        assert "| A.B | 1.234 |" in text
        assert "> shape holds" in text

    def test_multiple_sections(self):
        results = [self.make_result(), self.make_result()]
        text = render_markdown(results)
        assert text.count("## figX") == 2


class TestGenerateReport:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            generate_report(Session(scale=0.1), experiments=["fig99"])

    def test_single_experiment_report(self):
        session = Session(scale=0.1, warps_per_sm=2)
        text = generate_report(session, experiments=["fig5"],
                               pairs=["HS.MM"])
        assert "fig5" in text
        assert "HS.MM" in text
        assert "gmean[all]" in text
