"""Tests for the parallel batch runner."""

import pytest

import repro.harness.parallel as parallel_module
from repro.engine.config import GpuConfig
from repro.harness.parallel import (
    DEFAULT_MAX_EVENTS,
    Job,
    WorkerPool,
    expected_cost,
    pair_jobs,
    run_jobs,
    run_jobs_chunked,
)
from repro.harness.result_cache import ResultCache, cost_key, job_key

SCALE = 0.05


def tiny_job(label, pair="HS.MM", policy="baseline", seed=0,
             max_events=DEFAULT_MAX_EVENTS):
    return Job(label=label, names=tuple(pair.split(".")),
               config=GpuConfig.baseline(num_sms=2).with_policy(policy),
               scale=SCALE, warps_per_sm=2, seed=seed,
               max_events=max_events)


class TestJobConstruction:
    def test_job_requires_names(self):
        with pytest.raises(ValueError):
            Job(label="x", names=(), config=GpuConfig.baseline())

    def test_pair_jobs_grid(self):
        configs = {"base": GpuConfig.baseline(),
                   "dws": GpuConfig.baseline().with_policy("dws")}
        jobs = pair_jobs(["HS.MM", "FFT.HS"], configs, scale=SCALE)
        assert len(jobs) == 4
        assert {j.label for j in jobs} == {
            "HS.MM/base", "HS.MM/dws", "FFT.HS/base", "FFT.HS/dws",
        }

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            run_jobs([tiny_job("same"), tiny_job("same")], workers=1)


class TestSerialExecution:
    def test_results_keyed_by_label(self):
        results = run_jobs([tiny_job("a"), tiny_job("b", policy="dws")],
                           workers=1)
        assert set(results) == {"a", "b"}
        for r in results.values():
            assert r.total_cycles > 0
            assert all(t.completed_executions >= 1
                       for t in r.tenants.values())

    def test_single_job_shortcut(self):
        results = run_jobs([tiny_job("solo")], workers=8)
        assert "solo" in results


class TestParallelMatchesSerial:
    def test_process_pool_reproduces_serial_results(self):
        jobs = [tiny_job("a"), tiny_job("b", pair="FFT.HS")]
        serial = run_jobs(jobs, workers=1)
        try:
            parallel = run_jobs(jobs, workers=2)
        except (OSError, PermissionError):
            pytest.skip("process creation not permitted in this environment")
        for label in serial:
            assert (serial[label].total_cycles
                    == parallel[label].total_cycles)
            assert (serial[label].tenants[0].instructions
                    == parallel[label].tenants[0].instructions)

    def test_explicit_chunksize_changes_nothing(self):
        # Chunking is an IPC batching knob: any chunksize must return
        # the same results in the same caller order.
        jobs = [tiny_job("a"), tiny_job("b", pair="FFT.HS"),
                tiny_job("c", seed=1)]
        serial = run_jobs(jobs, workers=1)
        try:
            chunked = run_jobs(jobs, workers=2, chunksize=3)
        except (OSError, PermissionError):
            pytest.skip("process creation not permitted in this environment")
        assert list(chunked) == ["a", "b", "c"]
        for label in serial:
            assert (serial[label].total_cycles
                    == chunked[label].total_cycles)


class TestMaxEvents:
    def test_max_events_reaches_the_simulator(self):
        # An impossible budget must trip the manager's exhaustion guard
        # — proof the field actually threads through _execute.
        with pytest.raises(RuntimeError, match="max_events"):
            run_jobs([tiny_job("cut", max_events=10)], workers=1)

    def test_max_events_changes_job_key(self):
        # A truncated run must never satisfy a full run from the cache.
        assert (job_key(tiny_job("a", max_events=1000))
                != job_key(tiny_job("a")))

    def test_session_jobs_carry_session_max_events(self):
        from repro.harness.runner import Session

        session = Session(scale=SCALE, warps_per_sm=2, max_events=1234)
        job = session.job_for(("HS", "MM"), GpuConfig.baseline(num_sms=2))
        assert job.max_events == 1234


class TestIncrementalStores:
    def test_results_persist_up_to_a_mid_sweep_crash(self, tmp_path,
                                                     monkeypatch):
        # Completed jobs must already be on disk when a later job dies.
        cache = ResultCache(tmp_path)
        real_execute = parallel_module._execute

        def fail_on_b(job, validate=False):
            if job.label == "b":
                raise RuntimeError("worker died")
            return real_execute(job, validate)

        monkeypatch.setattr(parallel_module, "_execute", fail_on_b)
        jobs = [tiny_job("a"), tiny_job("b", pair="FFT.HS")]
        with pytest.raises(RuntimeError):
            run_jobs(jobs, workers=1, cache=cache)
        assert cache.stores == 1  # "a" survived the crash

        monkeypatch.setattr(parallel_module, "_execute", real_execute)
        rerun = run_jobs(jobs, workers=1, cache=cache)
        assert cache.hits == 1  # only "b" was re-simulated
        assert set(rerun) == {"a", "b"}


class TestCostModel:
    def test_recorded_cost_beats_heuristic(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = tiny_job("a")
        cache.record_cost(cost_key(job), 42.0)
        assert expected_cost(job, cache) == pytest.approx(42.0)

    def test_cold_cache_falls_back_to_footprint(self, tmp_path):
        cache = ResultCache(tmp_path)
        light = tiny_job("l", pair="HS.MM")
        heavy = tiny_job("h", pair="GUPS.MM")  # GUPS: huge footprint
        assert expected_cost(heavy, cache) > expected_cost(light, cache)
        assert expected_cost(light, None) > 0

    def test_config_variants_share_one_cost_bucket(self):
        assert (cost_key(tiny_job("a", policy="baseline"))
                == cost_key(tiny_job("b", policy="dws")))
        assert (cost_key(tiny_job("a"))
                != cost_key(tiny_job("a", pair="FFT.HS")))

    def test_run_jobs_records_costs(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = tiny_job("a")
        run_jobs([job], workers=1, cache=cache)
        assert cache.expected_cost(cost_key(job)) is not None


class TestChunkedReference:
    def test_chunked_matches_dynamic_scheduler(self):
        jobs = [tiny_job("a"), tiny_job("b", pair="FFT.HS"),
                tiny_job("c", seed=1)]
        dynamic = run_jobs(jobs, workers=1)
        chunked = run_jobs_chunked(jobs, workers=1)
        assert list(chunked) == list(dynamic)
        for label in dynamic:
            assert (chunked[label].total_cycles
                    == dynamic[label].total_cycles)
            assert (chunked[label].tenants[0].instructions
                    == dynamic[label].tenants[0].instructions)


class TestWorkerPool:
    def test_pool_reused_across_run_jobs_calls(self):
        jobs1 = [tiny_job("a"), tiny_job("b", pair="FFT.HS")]
        jobs2 = [tiny_job("c", seed=1), tiny_job("d", policy="dws")]
        serial = run_jobs(jobs1 + jobs2, workers=1)
        try:
            with WorkerPool(2) as pool:
                first = run_jobs(jobs1, workers=2, pool=pool)
                second = run_jobs(jobs2, workers=2, pool=pool)
        except (OSError, PermissionError):
            pytest.skip("process creation not permitted in this environment")
        combined = {**first, **second}
        for label in serial:
            assert (combined[label].total_cycles
                    == serial[label].total_cycles)

    def test_shutdown_is_idempotent(self):
        pool = WorkerPool(2)
        pool.shutdown()
        pool.shutdown()

    def test_kill_reaps_terminated_workers(self):
        pool = WorkerPool(2)
        try:
            # Workers spawn lazily on first submit: run a job to get a
            # live pool before killing it.
            run_jobs([tiny_job("a"), tiny_job("b", pair="FFT.HS")],
                     workers=2, pool=pool)
            processes = list(pool.executor._processes.values())
        except (OSError, PermissionError):
            pytest.skip("process creation not permitted in this environment")
        assert processes
        pool.kill()
        # No zombies left behind: every terminated worker was joined
        # (exitcode set means the parent reaped it).
        for process in processes:
            assert not process.is_alive()
            assert process.exitcode is not None

    def test_kill_then_reuse_respawns_fresh_pool(self):
        pool = WorkerPool(2)
        try:
            jobs = [tiny_job("a")]
            first = run_jobs(jobs, workers=2, pool=pool)
            pool.kill()
            second = run_jobs(jobs, workers=2, pool=pool)
        except (OSError, PermissionError):
            pytest.skip("process creation not permitted in this environment")
        finally:
            pool.shutdown()
        assert first["a"].total_cycles == second["a"].total_cycles

    def test_kill_without_executor_is_a_noop(self):
        WorkerPool(2).kill()  # never spun up: nothing to terminate
