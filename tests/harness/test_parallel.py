"""Tests for the parallel batch runner."""

import pytest

from repro.engine.config import GpuConfig
from repro.harness.parallel import Job, pair_jobs, run_jobs

SCALE = 0.05


def tiny_job(label, pair="HS.MM", policy="baseline", seed=0):
    return Job(label=label, names=tuple(pair.split(".")),
               config=GpuConfig.baseline(num_sms=2).with_policy(policy),
               scale=SCALE, warps_per_sm=2, seed=seed)


class TestJobConstruction:
    def test_job_requires_names(self):
        with pytest.raises(ValueError):
            Job(label="x", names=(), config=GpuConfig.baseline())

    def test_pair_jobs_grid(self):
        configs = {"base": GpuConfig.baseline(),
                   "dws": GpuConfig.baseline().with_policy("dws")}
        jobs = pair_jobs(["HS.MM", "FFT.HS"], configs, scale=SCALE)
        assert len(jobs) == 4
        assert {j.label for j in jobs} == {
            "HS.MM/base", "HS.MM/dws", "FFT.HS/base", "FFT.HS/dws",
        }

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            run_jobs([tiny_job("same"), tiny_job("same")], workers=1)


class TestSerialExecution:
    def test_results_keyed_by_label(self):
        results = run_jobs([tiny_job("a"), tiny_job("b", policy="dws")],
                           workers=1)
        assert set(results) == {"a", "b"}
        for r in results.values():
            assert r.total_cycles > 0
            assert all(t.completed_executions >= 1
                       for t in r.tenants.values())

    def test_single_job_shortcut(self):
        results = run_jobs([tiny_job("solo")], workers=8)
        assert "solo" in results


class TestParallelMatchesSerial:
    def test_process_pool_reproduces_serial_results(self):
        jobs = [tiny_job("a"), tiny_job("b", pair="FFT.HS")]
        serial = run_jobs(jobs, workers=1)
        try:
            parallel = run_jobs(jobs, workers=2)
        except (OSError, PermissionError):
            pytest.skip("process creation not permitted in this environment")
        for label in serial:
            assert (serial[label].total_cycles
                    == parallel[label].total_cycles)
            assert (serial[label].tenants[0].instructions
                    == parallel[label].tenants[0].instructions)

    def test_explicit_chunksize_changes_nothing(self):
        # Chunking is an IPC batching knob: any chunksize must return
        # the same results in the same caller order.
        jobs = [tiny_job("a"), tiny_job("b", pair="FFT.HS"),
                tiny_job("c", seed=1)]
        serial = run_jobs(jobs, workers=1)
        try:
            chunked = run_jobs(jobs, workers=2, chunksize=3)
        except (OSError, PermissionError):
            pytest.skip("process creation not permitted in this environment")
        assert list(chunked) == ["a", "b", "c"]
        for label in serial:
            assert (serial[label].total_cycles
                    == chunked[label].total_cycles)
