"""Result validation wired into supervised dispatch: fatal, quarantined."""

import pytest

from repro.engine.config import GpuConfig
from repro.harness import parallel
from repro.harness.parallel import Job, run_jobs
from repro.harness.supervision import (
    DOMAIN_VALIDATE,
    RetryPolicy,
    SupervisionPolicy,
    SupervisionStats,
)
from repro.harness.validate import ResultValidationError, ValidationReport


def _jobs():
    config = GpuConfig.baseline(num_sms=4)
    return [Job(label=f"{pair}/dws", names=tuple(pair.split(".")),
                config=config.with_policy("dws"), scale=0.03, warps_per_sm=2)
            for pair in ("HS.MM", "FFT.HS")]


@pytest.fixture(autouse=True)
def _clean_env():
    from repro.integrity import clear_install
    clear_install()
    yield
    clear_install()


def _failing_validator(bad_label_fragment):
    def fake_validate(result):
        report = ValidationReport()
        names = {s.workload_name for s in result.tenants.values()}
        if bad_label_fragment in names:
            report.violations.append("seeded: walks do not balance")
        report.checks_run = 1
        return report
    return fake_validate


def test_validation_failure_quarantines_without_retry(monkeypatch):
    monkeypatch.setattr(parallel, "validate_result",
                        _failing_validator("FFT"))
    stats = SupervisionStats()
    results = run_jobs(
        _jobs(), workers=1,
        supervision=SupervisionPolicy(retry=RetryPolicy(max_attempts=3)),
        stats=stats, validate=True)
    # the healthy job landed; the invalid one is quarantined
    assert set(results) == {"HS.MM/dws"}
    assert "FFT.HS/dws" in stats.quarantined
    assert "seeded: walks do not balance" in stats.quarantined["FFT.HS/dws"]
    # deterministic failure: no retry budget burned, single attempt
    assert stats.attempts["FFT.HS/dws"] == 1
    assert stats.retries == 0
    assert stats.failures == {DOMAIN_VALIDATE: 1}


def test_validation_failure_captures_forensics_bundle(monkeypatch, tmp_path):
    from repro.integrity import IntegrityConfig, install

    monkeypatch.setattr(parallel, "validate_result",
                        _failing_validator("FFT"))
    install(IntegrityConfig(forensics_dir=str(tmp_path)))
    stats = SupervisionStats()
    run_jobs(_jobs(), workers=1, supervision=SupervisionPolicy(),
             stats=stats, validate=True)
    assert "FFT.HS/dws" in stats.forensics
    bundle_path = stats.forensics["FFT.HS/dws"]
    assert "[bundle: " in stats.quarantined["FFT.HS/dws"]

    from repro.integrity import load_bundle
    bundle = load_bundle(bundle_path)
    assert bundle["error"]["type"] == "ResultValidationError"
    assert bundle["error"]["violations"] == ["seeded: walks do not balance"]
    assert bundle["job"]["label"] == "FFT.HS/dws"
    assert bundle["stats"]  # the invalid result's stats ride along


def test_validation_passes_are_invisible():
    stats = SupervisionStats()
    results = run_jobs(_jobs(), workers=1, supervision=SupervisionPolicy(),
                       stats=stats, validate=True)
    assert set(results) == {"HS.MM/dws", "FFT.HS/dws"}
    assert stats.ok
    assert not stats.forensics


def test_unsupervised_validation_raises(monkeypatch):
    monkeypatch.setattr(parallel, "validate_result",
                        _failing_validator("HS"))
    with pytest.raises(ResultValidationError):
        run_jobs(_jobs()[:1], workers=1, validate=True)


def test_campaign_jobs_validate_by_default(tmp_path):
    # run_campaign passes validate=True; a real (healthy) slice must
    # still come through clean with validation on.
    from repro.harness.campaign import run_campaign
    from repro.harness.runner import Session

    session = Session(scale=0.03, warps_per_sm=2, seed=0)
    report = run_campaign(session, ["fig5"], ["HS.MM"], workers=1)
    assert report.ok
    assert report.supervision.failures.get(DOMAIN_VALIDATE, 0) == 0
