"""Unit tests for the CI perf gate's comparison logic.

The gate compares a fresh ``BENCH_engine.json`` against the committed
baseline.  Baselines evolve: older ones predate the walk-fold rungs and
carry no per-rung fold fractions, so the gate must skip — not crash on,
not fail on — metrics the baseline does not have, while still holding
the line on every metric it does.
"""

import importlib.util
import json
from pathlib import Path

_GATE_PATH = (Path(__file__).resolve().parents[2]
              / "benchmarks" / "check_perf_gate.py")
_spec = importlib.util.spec_from_file_location("check_perf_gate", _GATE_PATH)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def _pair(speedup=1.5, fastpath=None, shard4=1.6):
    record = {
        "speedup_vs_pr4": speedup,
        "speedup_vs_seed": speedup * 2,
        "shards": {"1": {"modeled_speedup": 1.0},
                   "4": {"modeled_speedup": shard4}},
    }
    if fastpath is not None:
        record["fastpath"] = fastpath
    return record


def _payload(**pairs):
    return {"pairs": pairs}


class TestFastpathMetrics:
    def test_missing_in_baseline_is_skipped_not_crashed(self):
        """A baseline that predates the walk rungs gates nothing new."""
        baseline = _payload(heavy=_pair(fastpath=None))
        fresh = _payload(heavy=_pair(
            fastpath={"walk_fold_fraction": 0.0, "l2_fold_fraction": 0.0}))
        assert gate.compare(baseline, fresh, tolerance=0.10) == []

    def test_partial_baseline_gates_only_present_keys(self):
        """Keys absent from the baseline record are individually skipped."""
        baseline = _payload(heavy=_pair(
            fastpath={"hit_path_fraction": 0.5}))  # no walk-rung keys
        fresh = _payload(heavy=_pair(
            fastpath={"hit_path_fraction": 0.5}))  # still none — fine
        assert gate.compare(baseline, fresh, tolerance=0.10) == []

    def test_regressed_fraction_fails(self):
        baseline = _payload(heavy=_pair(
            fastpath={"walk_fold_fraction": 0.40}))
        fresh = _payload(heavy=_pair(
            fastpath={"walk_fold_fraction": 0.20}))
        failures = gate.compare(baseline, fresh, tolerance=0.10)
        assert len(failures) == 1
        assert "fastpath.walk_fold_fraction" in failures[0]

    def test_fraction_within_tolerance_passes(self):
        baseline = _payload(heavy=_pair(
            fastpath={"walk_fold_fraction": 0.40}))
        fresh = _payload(heavy=_pair(
            fastpath={"walk_fold_fraction": 0.37}))
        assert gate.compare(baseline, fresh, tolerance=0.10) == []

    def test_key_vanishing_from_fresh_fails(self):
        """The benchmark silently dropping a rung's report is a regression."""
        baseline = _payload(heavy=_pair(
            fastpath={"dram_batch_fraction": 0.9}))
        fresh = _payload(heavy=_pair(fastpath={}))
        failures = gate.compare(baseline, fresh, tolerance=0.10)
        assert len(failures) == 1
        assert "stopped reporting" in failures[0]


class TestSpeedupMetrics:
    def test_missing_speedup_key_is_skipped(self):
        baseline = _payload(heavy=_pair())
        del baseline["pairs"]["heavy"]["speedup_vs_seed"]
        fresh = _payload(heavy=_pair())
        assert gate.compare(baseline, fresh, tolerance=0.10) == []

    def test_regressed_speedup_fails(self):
        baseline = _payload(heavy=_pair(speedup=1.5))
        fresh = _payload(heavy=_pair(speedup=1.0))
        failures = gate.compare(baseline, fresh, tolerance=0.10)
        assert any("speedup_vs_pr4" in f for f in failures)


class TestMain:
    def test_smoke_results_are_refused(self, tmp_path):
        base = tmp_path / "base.json"
        fresh = tmp_path / "fresh.json"
        base.write_text(json.dumps(_payload(heavy=_pair())))
        fresh.write_text(json.dumps(
            dict(_payload(heavy=_pair()), smoke=True)))
        assert gate.main(["--baseline", str(base),
                          "--fresh", str(fresh)]) == 2

    def test_old_baseline_new_fresh_passes_end_to_end(self, tmp_path):
        """The committed-baseline upgrade path: old file, rung-rich fresh."""
        base = tmp_path / "base.json"
        fresh = tmp_path / "fresh.json"
        base.write_text(json.dumps(_payload(heavy=_pair())))
        fresh.write_text(json.dumps(_payload(heavy=_pair(
            fastpath={"hit_path_fraction": 0.0,
                      "l2_fold_fraction": 0.1,
                      "walk_fold_fraction": 0.3,
                      "dram_batch_fraction": 0.9}))))
        assert gate.main(["--baseline", str(base),
                          "--fresh", str(fresh)]) == 0


def _wall_pair(wall=1.5, shard4=1.6):
    record = _pair(shard4=shard4)
    record["shards"]["4"]["backends"] = {
        "threads": {"wall_speedup": 0.9},
        "processes": {"wall_speedup": wall},
    }
    return record


class TestMeasuredWallGate:
    def test_no_host_record_is_skipped(self):
        assert "no host record" in gate.wall_ineligibility(_payload())

    def test_small_host_is_ineligible(self):
        fresh = dict(_payload(), host={"cpu_count": 1, "load_avg_1m": 0.0})
        assert "core" in gate.wall_ineligibility(fresh)

    def test_loaded_host_is_ineligible(self):
        fresh = dict(_payload(), host={"cpu_count": 8, "load_avg_1m": 7.5})
        assert "loaded" in gate.wall_ineligibility(fresh)

    def test_idle_multicore_host_is_eligible(self):
        fresh = dict(_payload(), host={"cpu_count": 8, "load_avg_1m": 0.2})
        assert gate.wall_ineligibility(fresh) == ""

    def test_floor_passes_on_fast_pair(self):
        fresh = _payload(light_resident=_wall_pair(wall=1.45))
        assert gate.check_wall_floor(fresh) == []

    def test_floor_fails_below_requirement(self):
        fresh = _payload(light_resident=_wall_pair(wall=1.1),
                         heavy=_wall_pair(wall=0.4))
        failures = gate.check_wall_floor(fresh)
        assert len(failures) == 1
        assert "1.3x measured wall" in failures[0]
        assert "light_resident" in failures[0]  # names the best pair

    def test_missing_backend_sweep_fails(self):
        fresh = _payload(heavy=_pair())
        failures = gate.check_wall_floor(fresh)
        assert len(failures) == 1
        assert "backend sweep was dropped" in failures[0]

    def test_main_skips_wall_on_ineligible_host(self, tmp_path):
        base = tmp_path / "base.json"
        fresh_path = tmp_path / "fresh.json"
        base.write_text(json.dumps(_payload(heavy=_pair())))
        fresh_path.write_text(json.dumps(dict(
            _payload(heavy=_wall_pair(wall=0.5)),
            host={"cpu_count": 1, "load_avg_1m": 0.0})))
        assert gate.main(["--baseline", str(base),
                          "--fresh", str(fresh_path)]) == 0

    def test_main_require_wall_refuses_ineligible_host(self, tmp_path):
        base = tmp_path / "base.json"
        fresh_path = tmp_path / "fresh.json"
        base.write_text(json.dumps(_payload(heavy=_pair())))
        fresh_path.write_text(json.dumps(dict(
            _payload(heavy=_wall_pair(wall=0.5)),
            host={"cpu_count": 1, "load_avg_1m": 0.0})))
        assert gate.main(["--baseline", str(base),
                          "--fresh", str(fresh_path),
                          "--require-wall"]) == 2

    def test_main_enforces_wall_on_eligible_host(self, tmp_path):
        base = tmp_path / "base.json"
        fresh_path = tmp_path / "fresh.json"
        base.write_text(json.dumps(_payload(heavy=_pair())))
        fresh_path.write_text(json.dumps(dict(
            _payload(heavy=_wall_pair(wall=0.5)),
            host={"cpu_count": 8, "load_avg_1m": 0.1})))
        assert gate.main(["--baseline", str(base),
                          "--fresh", str(fresh_path)]) == 1

    def test_main_passes_wall_on_eligible_host(self, tmp_path):
        base = tmp_path / "base.json"
        fresh_path = tmp_path / "fresh.json"
        base.write_text(json.dumps(_payload(heavy=_pair())))
        fresh_path.write_text(json.dumps(dict(
            _payload(heavy=_wall_pair(wall=1.6)),
            host={"cpu_count": 8, "load_avg_1m": 0.1})))
        assert gate.main(["--baseline", str(base),
                          "--fresh", str(fresh_path)]) == 0
