"""Tests for the ASCII bar rendering."""

from repro.harness.reporting import ExperimentResult, format_bars


def make_result():
    r = ExperimentResult("fig5", "demo", columns=["pair", "dws"])
    r.add_row(pair="A.B", dws=2.0)
    r.add_row(pair="C.D", dws=0.5)
    r.add_row(pair="note", dws="n/a")  # non-numeric rows skipped
    return r


def test_bars_contain_labels_and_values():
    text = format_bars(make_result(), "dws")
    assert "A.B" in text and "C.D" in text
    assert "2.000" in text and "0.500" in text


def test_bar_lengths_scale_with_values():
    text = format_bars(make_result(), "dws", width=20)
    lines = text.splitlines()[1:]
    hashes = {line.split()[0]: line.count("#") for line in lines}
    # the column max fills the bar (one cell may be the baseline tick)
    assert hashes["A.B"] >= 19
    assert 0 < hashes["C.D"] < hashes["A.B"]


def test_baseline_tick_present():
    text = format_bars(make_result(), "dws", baseline=1.0)
    for line in text.splitlines()[1:]:
        assert "|" in line


def test_empty_column_handled():
    r = ExperimentResult("x", "t", columns=["pair", "v"])
    r.add_row(pair="only", v="text")
    assert "no numeric values" in format_bars(r, "v")
