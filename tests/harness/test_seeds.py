"""Tests for seed-stability studies."""

import pytest

from repro.engine.config import GpuConfig
from repro.harness.seeds import (
    PairedComparison,
    SeedStats,
    compare_policies,
    seed_study,
)

SCALE = 0.05


class TestSeedStats:
    def test_moments(self):
        s = SeedStats((1.0, 2.0, 3.0))
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.stdev == pytest.approx(1.0)
        assert s.cv == pytest.approx(0.5)

    def test_single_value_has_zero_spread(self):
        s = SeedStats((4.0,))
        assert s.stdev == 0.0 and s.cv == 0.0


class TestSeedStudy:
    def test_runs_once_per_seed(self):
        stats = seed_study("HS.MM", GpuConfig.baseline(num_sms=2),
                           seeds=(0, 1), scale=SCALE, warps_per_sm=2)
        assert len(stats.values) == 2
        assert all(v > 0 for v in stats.values)

    def test_same_seed_twice_gives_identical_values(self):
        stats = seed_study("HS.MM", GpuConfig.baseline(num_sms=2),
                           seeds=(3, 3), scale=SCALE, warps_per_sm=2)
        assert stats.values[0] == stats.values[1]
        assert stats.cv == 0.0

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            seed_study("HS.MM", GpuConfig.baseline(num_sms=2), seeds=())


class TestPairedComparison:
    def test_ratios_and_direction(self):
        comp = PairedComparison("a", "b",
                                SeedStats((1.0, 2.0)), SeedStats((2.0, 4.0)))
        assert comp.ratios == (2.0, 2.0)
        assert comp.mean_ratio == 2.0
        assert comp.consistent_direction

    def test_mixed_direction_flagged(self):
        comp = PairedComparison("a", "b",
                                SeedStats((1.0, 2.0)), SeedStats((2.0, 1.0)))
        assert not comp.consistent_direction

    def test_compare_policies_end_to_end(self):
        base = GpuConfig.baseline(num_sms=2)
        comp = compare_policies("HS.MM", base, base.with_policy("dws"),
                                seeds=(0, 1), scale=SCALE, warps_per_sm=2,
                                label_a="baseline", label_b="dws")
        assert comp.label_b == "dws"
        assert len(comp.ratios) == 2
        assert all(r > 0 for r in comp.ratios)
