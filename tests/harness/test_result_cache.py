"""The on-disk result cache: key scheme, storage, and harness wiring."""

import pickle

import pytest

import repro.harness.parallel as parallel_module
from repro.engine.config import GpuConfig
from repro.harness import Session, faults
from repro.harness.parallel import Job, run_jobs
from repro.harness.result_cache import (
    CACHE_FORMAT,
    COST_EMA_ALPHA,
    CacheIntegrityError,
    ResultCache,
    cost_key,
    decode_entry,
    encode_entry,
    job_key,
)

SCALE = 0.05


def tiny_job(label="job", pair="HS.MM", policy="baseline", seed=0,
             scale=SCALE, max_events=None):
    kwargs = {} if max_events is None else {"max_events": max_events}
    return Job(label=label, names=tuple(pair.split(".")),
               config=GpuConfig.baseline(num_sms=2).with_policy(policy),
               scale=scale, warps_per_sm=2, seed=seed, **kwargs)


class TestJobKey:
    def test_stable_across_equal_jobs(self):
        assert job_key(tiny_job("a")) == job_key(tiny_job("b"))
        # The label is presentation, not content.

    @pytest.mark.parametrize("variant", [
        tiny_job(pair="FFT.HS"),
        tiny_job(policy="dws"),
        tiny_job(seed=1),
        tiny_job(scale=SCALE * 2),
        tiny_job(max_events=1000),
    ])
    def test_any_content_change_changes_key(self, variant):
        assert job_key(variant) != job_key(tiny_job())

    def test_nested_config_field_changes_key(self):
        base = tiny_job()
        bigger_tlb = tiny_job()
        object.__setattr__(
            bigger_tlb, "config",
            base.config.with_l2_tlb_entries(base.config.l2_tlb.entries * 2))
        assert job_key(bigger_tlb) != job_key(base)


class TestResultCacheStorage:
    def test_roundtrip_and_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ab" + "0" * 62) is None
        cache.put("ab" + "0" * 62, {"x": 1})
        assert cache.get("ab" + "0" * 62) == {"x": 1}
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["stores"] == 1 and stats["corrupt"] == 0
        assert stats["entries"] == 1 and stats["evictions"] == 0
        assert stats["max_bytes"] is None
        assert stats["bytes"] == cache._path("ab" + "0" * 62).stat().st_size

    def test_corrupted_entry_is_dropped(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "0" * 62
        cache.put(key, [1, 2, 3])
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert not path.exists()  # poisoned entry removed for good

    def test_unwritable_root_degrades_silently(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("in the way")
        cache = ResultCache(blocker / "cache")  # mkdir will fail
        cache.put("ef" + "0" * 62, {"x": 1})
        assert cache.stores == 0
        assert cache.get("ef" + "0" * 62) is None

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(f"{i:02d}" + "0" * 62, i)
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0


class TestEntryEnvelope:
    def test_round_trip(self):
        payload = b"some pickled bytes"
        assert decode_entry(encode_entry(payload)) == payload

    def test_rejects_truncation(self):
        blob = encode_entry(b"x" * 100)
        with pytest.raises(CacheIntegrityError):
            decode_entry(blob[:len(blob) // 2])

    def test_rejects_bitflip(self):
        blob = bytearray(encode_entry(b"x" * 100))
        blob[-1] ^= 0x40
        with pytest.raises(CacheIntegrityError):
            decode_entry(bytes(blob))

    def test_rejects_wrong_format_version(self):
        blob = encode_entry(b"payload", fmt=CACHE_FORMAT + 1)
        with pytest.raises(CacheIntegrityError):
            decode_entry(blob)

    def test_rejects_foreign_bytes(self):
        with pytest.raises(CacheIntegrityError):
            decode_entry(b"not an envelope at all")


class TestCacheCorruption:
    KEY = "ab" + "0" * 62

    def corrupted_cache(self, tmp_path, mutate):
        cache = ResultCache(tmp_path)
        cache.put(self.KEY, {"x": 1})
        mutate(cache._path(self.KEY))
        return cache

    @pytest.mark.parametrize("mutate", [
        lambda p: p.write_bytes(p.read_bytes()[:15]),              # torn write
        lambda p: p.write_bytes(p.read_bytes()[:-3] + b"zzz"),     # bad digest
        lambda p: p.write_bytes(
            encode_entry(pickle.dumps({"x": 1}), fmt=CACHE_FORMAT + 1)),
        lambda p: p.write_bytes(pickle.dumps({"x": 1})),           # legacy raw
    ], ids=["truncated", "bad-checksum", "wrong-version", "legacy-pickle"])
    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path, mutate):
        cache = self.corrupted_cache(tmp_path, mutate)
        assert cache.get(self.KEY) is None
        assert cache.corrupt == 1
        # ... and a recompute can be stored and read back afterwards.
        cache.put(self.KEY, {"x": 2})
        assert cache.get(self.KEY) == {"x": 2}

    def test_corrupt_entry_lands_in_quarantine(self, tmp_path):
        cache = self.corrupted_cache(
            tmp_path, lambda p: p.write_bytes(b"garbage"))
        assert cache.quarantined_entries() == 0
        cache.get(self.KEY)
        assert cache.quarantined_entries() == 1
        assert not cache._path(self.KEY).exists()
        # Quarantined files are outside the entry namespace: they never
        # count as live entries and clear() leaves them for inspection.
        assert len(cache) == 0

    def test_stats_surface_corruption(self, tmp_path):
        cache = self.corrupted_cache(
            tmp_path, lambda p: p.write_bytes(b"garbage"))
        cache.get(self.KEY)
        assert cache.stats()["corrupt"] == 1


class TestRunJobsCache:
    def test_warm_run_simulates_nothing(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        jobs = [tiny_job("a"), tiny_job("b", pair="FFT.HS")]
        cold = run_jobs(jobs, workers=1, cache=cache)
        assert cache.stores == 2

        def boom(job):
            raise AssertionError(f"simulated on a warm cache: {job.label}")

        monkeypatch.setattr(parallel_module, "_execute", boom)
        warm = run_jobs(jobs, workers=1, cache=cache)
        assert set(warm) == set(cold)
        for label in cold:
            assert warm[label].total_cycles == cold[label].total_cycles

    def test_partial_hit_runs_only_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_jobs([tiny_job("a")], workers=1, cache=cache)
        executed_before = cache.stores
        run_jobs([tiny_job("a"), tiny_job("b", seed=1)],
                 workers=1, cache=cache)
        assert cache.stores == executed_before + 1

    def test_parallel_with_cache_matches_serial(self, tmp_path):
        jobs = [tiny_job("a"), tiny_job("b", pair="FFT.HS")]
        serial = run_jobs(jobs, workers=1)
        cache = ResultCache(tmp_path)
        try:
            parallel = run_jobs(jobs, workers=2, cache=cache,
                                chunksize=1)
        except (OSError, PermissionError):
            pytest.skip("process creation not permitted in this environment")
        for label in serial:
            assert (serial[label].total_cycles
                    == parallel[label].total_cycles)
        # The pool's results were stored from the parent...
        assert cache.stores == 2
        # ... so a warm serial pass hits for every job.
        warm = run_jobs(jobs, workers=1, cache=cache)
        assert cache.hits == 2
        for label in serial:
            assert warm[label].total_cycles == serial[label].total_cycles


class TestCostModel:
    def test_record_and_read_back(self, tmp_path):
        cache = ResultCache(tmp_path)
        ckey = cost_key(tiny_job())
        assert cache.expected_cost(ckey) is None
        cache.record_cost(ckey, 4.0)
        assert cache.expected_cost(ckey) == pytest.approx(4.0)

    def test_ema_smoothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        ckey = cost_key(tiny_job())
        cache.record_cost(ckey, 4.0)
        cache.record_cost(ckey, 8.0)
        expected = COST_EMA_ALPHA * 8.0 + (1 - COST_EMA_ALPHA) * 4.0
        assert cache.expected_cost(ckey) == pytest.approx(expected)

    def test_costs_persist_across_instances(self, tmp_path):
        ckey = cost_key(tiny_job())
        first = ResultCache(tmp_path)
        first.record_cost(ckey, 2.5)
        first.flush_costs()
        second = ResultCache(tmp_path)
        assert second.expected_cost(ckey) == pytest.approx(2.5)

    def test_corrupt_costs_file_degrades_to_empty(self, tmp_path):
        (tmp_path / ResultCache.COSTS_FILE).write_text("not json{")
        cache = ResultCache(tmp_path)
        assert cache.expected_cost(cost_key(tiny_job())) is None
        cache.record_cost(cost_key(tiny_job()), 1.0)  # still writable
        cache.flush_costs()
        assert (ResultCache(tmp_path)
                .expected_cost(cost_key(tiny_job()))) == pytest.approx(1.0)

    def test_policy_variants_share_cost_key(self):
        assert cost_key(tiny_job()) == cost_key(tiny_job(policy="dwspp"))

    @pytest.mark.parametrize("variant", [
        tiny_job(pair="FFT.HS"),
        tiny_job(scale=SCALE * 2),
    ])
    def test_workload_identity_changes_cost_key(self, variant):
        assert cost_key(variant) != cost_key(tiny_job())


class TestWallSeconds:
    def test_fresh_result_measures_wall_time(self):
        result = run_jobs([tiny_job("a")], workers=1)["a"]
        assert result.wall_seconds > 0

    def test_cached_result_keeps_original_wall_time(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_jobs([tiny_job("a")], workers=1, cache=cache)["a"]
        warm = run_jobs([tiny_job("a")], workers=1, cache=cache)["a"]
        assert warm.wall_seconds == cold.wall_seconds


class TestSessionDiskCache:
    def test_warm_session_executes_zero_simulations(self, tmp_path):
        cold = Session(scale=SCALE, warps_per_sm=2,
                       cache_dir=str(tmp_path))
        config = GpuConfig.baseline(num_sms=2)
        result = cold.run_pair("HS.MM", config)
        assert cold.simulations_executed == 1

        warm = Session(scale=SCALE, warps_per_sm=2,
                       cache_dir=str(tmp_path))
        replay = warm.run_pair("HS.MM", config)
        assert warm.simulations_executed == 0
        assert replay.total_cycles == result.total_cycles

    def test_scale_change_misses(self, tmp_path):
        Session(scale=SCALE, warps_per_sm=2, cache_dir=str(tmp_path)) \
            .run_pair("HS.MM", GpuConfig.baseline(num_sms=2))
        other = Session(scale=SCALE * 2, warps_per_sm=2,
                        cache_dir=str(tmp_path))
        other.run_pair("HS.MM", GpuConfig.baseline(num_sms=2))
        assert other.simulations_executed == 1

    def test_no_cache_dir_stays_memory_only(self):
        session = Session(scale=SCALE, warps_per_sm=2)
        assert session.disk_cache is None
        config = GpuConfig.baseline(num_sms=2)
        session.run_pair("HS.MM", config)
        session.run_pair("HS.MM", config)  # memory memoization
        assert session.simulations_executed == 1


class TestCorruptCacheEntryHelper:
    def test_bitflip_and_truncate_break_the_entry(self, tmp_path):
        from repro.harness.faults import corrupt_cache_entry

        for mode in ("bitflip", "truncate"):
            cache = ResultCache(tmp_path / mode)
            key = "cc" + "2" * 62
            cache.put(key, {"ok": True})
            assert corrupt_cache_entry(cache, key, mode=mode)
            assert cache.get(key) is None
            assert cache.corrupt == 1

    def test_missing_entry_is_a_noop(self, tmp_path):
        from repro.harness.faults import corrupt_cache_entry

        cache = ResultCache(tmp_path)
        assert not corrupt_cache_entry(cache, "dd" + "3" * 62)

    def test_unknown_mode_rejected(self, tmp_path):
        from repro.harness.faults import corrupt_cache_entry

        with pytest.raises(ValueError):
            corrupt_cache_entry(ResultCache(tmp_path), "k", mode="meteor")


class TestGc:
    def seeded_cache(self, tmp_path):
        from repro.harness.faults import corrupt_cache_entry

        cache = ResultCache(tmp_path)
        good, bad = "aa" + "0" * 62, "bb" + "1" * 62
        cache.put(good, {"keep": True})
        cache.put(bad, {"doomed": True})
        corrupt_cache_entry(cache, bad, mode="truncate")
        assert cache.get(bad) is None  # -> quarantine/*.bad
        return cache, good

    def test_dry_run_reports_without_deleting(self, tmp_path):
        cache, good = self.seeded_cache(tmp_path)
        report = cache.gc(dry_run=True)
        assert report.dry_run
        assert report.quarantined == 1 and report.kept == 1
        assert report.removed == 1 and report.bytes_freed > 0
        assert "would remove" in report.summary()
        assert cache.quarantined_entries() == 1

    def test_gc_removes_quarantine_and_keeps_healthy(self, tmp_path):
        cache, good = self.seeded_cache(tmp_path)
        report = cache.gc()
        assert report.quarantined == 1 and report.kept == 1
        assert cache.quarantined_entries() == 0
        assert cache.get(good) is not None

    def test_gc_removes_corrupt_live_entries(self, tmp_path):
        from repro.harness.faults import corrupt_cache_entry

        cache = ResultCache(tmp_path)
        key = "cc" + "2" * 62
        cache.put(key, {"doomed": True})
        corrupt_cache_entry(cache, key, mode="bitflip")
        # Not read back (so not quarantined): gc must catch it live.
        report = cache.gc()
        assert report.corrupt == 1 and report.kept == 0

    def test_gc_removes_stale_format_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "dd" + "3" * 62
        payload = pickle.dumps({"old": True})
        blob = encode_entry(payload, fmt=CACHE_FORMAT - 1)
        path = cache.entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(blob)
        report = cache.gc()
        assert report.stale_format == 1

    def test_gc_removes_orphans_and_tmp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        good = "aa" + "0" * 62
        cache.put(good, {"keep": True})
        misfiled = tmp_path / "zz" / (good + ".pkl")
        misfiled.parent.mkdir()
        misfiled.write_bytes(b"misfiled")
        leftover = tmp_path / "aa" / "whatever.pkl.tmp"
        leftover.write_bytes(b"torn")
        report = cache.gc()
        assert report.orphaned == 2
        assert report.kept == 1
        assert not misfiled.exists() and not leftover.exists()
        assert not misfiled.parent.exists()  # emptied fan-out dir pruned

    def test_gc_on_missing_root_is_empty(self, tmp_path):
        report = ResultCache(tmp_path / "never").gc()
        assert report.removed == 0 and report.kept == 0

    def test_summary_reports_bytes_per_category(self, tmp_path):
        cache, _good = self.seeded_cache(tmp_path)
        report = cache.gc(dry_run=True)
        summary = report.summary()
        assert report.quarantined_bytes > 0
        assert f"[{report.quarantined_bytes} B]" in summary
        assert f"scanned {report.bytes_scanned} bytes" in summary
        assert report.bytes_scanned == report.kept_bytes + report.bytes_freed


class TestDiskGovernance:
    """Byte quota: evict-before-store, the gc quota rung, and the
    deterministic LRU-by-access order both share."""

    @pytest.fixture(autouse=True)
    def _clean_faults(self):
        faults.clear_faults()
        yield
        faults.clear_faults()

    KEYS = ["aa" + "0" * 62, "bb" + "1" * 62,
            "cc" + "2" * 62, "dd" + "3" * 62]

    def seeded(self, tmp_path, n=3):
        """``n`` same-sized entries; returns (ungoverned cache, entry size)."""
        cache = ResultCache(tmp_path)
        for key in self.KEYS[:n]:
            cache.put(key, {"v": "x" * 64})
        size = cache.entry_path(self.KEYS[0]).stat().st_size
        assert all(cache.entry_path(k).stat().st_size == size
                   for k in self.KEYS[:n])
        return cache, size

    def test_constructor_rejects_negative_quota(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_bytes=-1)

    def test_evict_before_store_drops_least_recently_accessed(self, tmp_path):
        _, size = self.seeded(tmp_path, n=2)
        cache = ResultCache(tmp_path, max_bytes=2 * size)
        assert cache.get(self.KEYS[0]) is not None  # refresh aa's recency
        cache.put(self.KEYS[2], {"v": "x" * 64})
        # bb (least recently accessed) was evicted to make room; the
        # refreshed aa and the new cc remain.
        assert not cache.entry_path(self.KEYS[1]).exists()
        assert cache.get(self.KEYS[0]) is not None
        assert cache.get(self.KEYS[2]) is not None
        assert cache.evictions == 1
        assert cache.bytes_evicted == size

    def test_overwrite_never_evicts_its_own_key(self, tmp_path):
        _, size = self.seeded(tmp_path, n=1)
        cache = ResultCache(tmp_path, max_bytes=size)
        cache.put(self.KEYS[0], {"v": "x" * 64})
        assert cache.evictions == 0
        assert cache.get(self.KEYS[0]) is not None

    def test_entry_larger_than_quota_still_stores(self, tmp_path):
        _, size = self.seeded(tmp_path, n=2)
        cache = ResultCache(tmp_path, max_bytes=size // 2)
        cache.put(self.KEYS[2], {"v": "y" * 4096})
        # Everything else was sacrificed, but the freshly paid-for
        # result landed anyway — the quota floor.
        assert cache.get(self.KEYS[2]) is not None
        assert not cache.entry_path(self.KEYS[0]).exists()
        assert not cache.entry_path(self.KEYS[1]).exists()
        assert cache.evictions == 2

    def test_gc_quota_rung_evicts_lru_after_integrity(self, tmp_path):
        cache, size = self.seeded(tmp_path, n=3)
        assert cache.get(self.KEYS[0]) is not None  # aa newest by access
        report = cache.gc(max_bytes=2 * size)
        assert report.evicted == 1
        assert report.evicted_bytes == size
        assert report.kept == 2
        # bb was the least recently accessed (aa was refreshed).
        assert not cache.entry_path(self.KEYS[1]).exists()
        assert cache.get(self.KEYS[0]) is not None
        assert cache.get(self.KEYS[2]) is not None

    def test_gc_dry_run_totals_match_actual_reclaim(self, tmp_path):
        cache, size = self.seeded(tmp_path, n=3)
        quota = 2 * size
        dry = cache.gc(dry_run=True, max_bytes=quota)
        assert dry.evicted == 1 and len(cache) == 3  # nothing deleted
        real = cache.gc(max_bytes=quota)
        assert (dry.evicted, dry.evicted_bytes, dry.bytes_freed) \
            == (real.evicted, real.evicted_bytes, real.bytes_freed)
        assert len(cache) == 2

    def test_disk_full_phantom_bytes_force_eviction(self, tmp_path):
        _, size = self.seeded(tmp_path, n=1)
        faults.install_faults([faults.FaultSpec(kind=faults.KIND_DISK_FULL,
                                                disk_bytes=10 ** 9)])
        cache = ResultCache(tmp_path, max_bytes=10 ** 6)
        assert cache.total_bytes() >= 10 ** 9
        cache.put(self.KEYS[1], {"v": "x" * 64})
        # Phantom usage dwarfs the quota: aa is evicted, yet the new
        # store still lands (the floor again).
        assert not cache.entry_path(self.KEYS[0]).exists()
        assert cache.get(self.KEYS[1]) is not None
        assert cache.evictions == 1

    def test_lost_usage_sidecar_degrades_to_key_order(self, tmp_path):
        cache, size = self.seeded(tmp_path, n=3)
        (tmp_path / ResultCache.USAGE_FILE).write_text("not json{")
        governed = ResultCache(tmp_path, max_bytes=2 * size)
        report = governed.gc(max_bytes=2 * size)
        # Unknown entries evict first with the key tiebreak: aa goes.
        assert report.evicted == 1
        assert not governed.entry_path(self.KEYS[0]).exists()

    def test_usage_survives_across_instances(self, tmp_path):
        cache, size = self.seeded(tmp_path, n=3)
        assert cache.get(self.KEYS[0]) is not None
        cache.flush_usage()
        fresh = ResultCache(tmp_path, max_bytes=2 * size)
        fresh.gc(max_bytes=2 * size)
        # The recency recorded by the first instance drove eviction in
        # the second: refreshed aa survived, oldest-access bb did not.
        assert fresh.entry_path(self.KEYS[0]).exists()
        assert not fresh.entry_path(self.KEYS[1]).exists()

    def test_gc_drops_stale_usage_accounting(self, tmp_path):
        import json as json_module

        cache, _size = self.seeded(tmp_path, n=2)
        cache.entry_path(self.KEYS[1]).unlink()  # deleted externally
        cache.gc()
        raw = json_module.loads(
            (tmp_path / ResultCache.USAGE_FILE).read_text())
        assert self.KEYS[0] in raw["entries"]
        assert self.KEYS[1] not in raw["entries"]

    def test_stats_surface_governance_counters(self, tmp_path):
        _, size = self.seeded(tmp_path, n=2)
        cache = ResultCache(tmp_path, max_bytes=2 * size)
        cache.put(self.KEYS[2], {"v": "x" * 64})
        stats = cache.stats()
        assert stats["max_bytes"] == 2 * size
        assert stats["evictions"] == 1
        assert stats["bytes_evicted"] == size
        assert stats["bytes"] <= 2 * size
