"""Tests for the run validator, including corruption detection."""

import pytest

from repro.engine.config import GpuConfig
from repro.gpu.warp import WarpOp
from repro.harness.validate import validate_result
from repro.tenancy.manager import MultiTenantManager
from repro.tenancy.tenant import Tenant


class TinyWorkload:
    def __init__(self, name, pages=10):
        self.name = name
        self.pages = pages

    def build_streams(self, num_warps, rng):
        return [
            iter([WarpOp(3, [(p + 1 + w * 50) << 12])
                  for p in range(self.pages)])
            for w in range(num_warps)
        ]


@pytest.fixture(scope="module", params=["baseline", "static", "dws", "dwspp"])
def clean_result(request):
    cfg = GpuConfig.baseline(num_sms=4).with_policy(request.param)
    manager = MultiTenantManager(
        cfg,
        [Tenant(0, TinyWorkload("a", 30)), Tenant(1, TinyWorkload("b", 5))],
        warps_per_sm=2,
    )
    return manager.run()


class TestCleanRunsValidate:
    def test_no_violations(self, clean_result):
        report = validate_result(clean_result)
        assert report.ok, report.violations
        assert report.checks_run > 10

    def test_raise_if_failed_noop_on_clean(self, clean_result):
        validate_result(clean_result).raise_if_failed()


class TestCorruptionDetected:
    def corrupt(self, result, **stat_overrides):
        result.stats.update(stat_overrides)
        return validate_result(result)

    def make_result(self):
        cfg = GpuConfig.baseline(num_sms=4)
        manager = MultiTenantManager(
            cfg, [Tenant(0, TinyWorkload("a"))], warps_per_sm=2,
        )
        return manager.run()

    def test_lost_walk_detected(self):
        result = self.make_result()
        result.stats["pws.completed.tenant0"] -= 1
        report = validate_result(result)
        assert not report.ok
        assert any("enqueued" in v for v in report.violations)

    def test_bogus_share_detected(self):
        result = self.make_result()
        result.stats["pws.walker_share.tenant0"] = 1.7
        report = validate_result(result)
        assert any("not a fraction" in v for v in report.violations)

    def test_impossible_stolen_count_detected(self):
        result = self.make_result()
        result.stats["pws.stolen.tenant0"] = 10_000.0
        report = validate_result(result)
        assert any("stolen" in v for v in report.violations)

    def test_instruction_accounting_detected(self):
        result = self.make_result()
        result.tenants[0].instructions += 5
        report = validate_result(result)
        assert any("instructions" in v for v in report.violations)

    def test_raise_if_failed_raises(self):
        result = self.make_result()
        result.stats["pws.walker_share.tenant0"] = -3.0
        with pytest.raises(AssertionError):
            validate_result(result).raise_if_failed()

    def test_raise_carries_typed_violations(self):
        from repro.harness.validate import ResultValidationError

        result = self.make_result()
        result.stats["pws.walker_share.tenant0"] = -3.0
        with pytest.raises(ResultValidationError) as excinfo:
            validate_result(result).raise_if_failed()
        assert excinfo.value.violations
        assert excinfo.value.details()["violations"]

    def test_validation_error_pickles(self):
        import pickle

        from repro.harness.validate import ResultValidationError

        error = ResultValidationError(["a bad thing", "another"])
        error.bundle_path = "/tmp/b.forensics.json"
        clone = pickle.loads(pickle.dumps(error))
        assert clone.violations == ["a bad thing", "another"]
        assert clone.bundle_path == "/tmp/b.forensics.json"
        assert "a bad thing" in str(clone)

    def test_lookup_identity_detected(self):
        result = self.make_result()
        for key in list(result.stats):
            if key.endswith(".lookups"):
                result.stats[key] += 1  # a probe that counted nothing
                break
        report = validate_result(result)
        assert any("lookups" in v for v in report.violations)

    def test_inflight_identity_detected(self):
        result = self.make_result()
        result.stats["pws.inflight_at_stop.tenant0"] += 1
        report = validate_result(result)
        assert any("in flight at stop" in v for v in report.violations)

    def test_missing_inflight_falls_back_to_bound(self):
        # A result from an old cache (format < 3) lacks the
        # inflight_at_stop keys; only the one-sided bound applies.
        result = self.make_result()
        for key in list(result.stats):
            if ".inflight_at_stop." in key:
                del result.stats[key]
        assert validate_result(result).ok
        result.stats["pws.completed.tenant0"] += 10
        report = validate_result(result)
        assert any("only" in v and "enqueued" in v for v in report.violations)

    def test_l2_miss_attribution_detected(self):
        result = self.make_result()
        result.stats["gpu.l2tlb_misses.tenant0"] += 3
        report = validate_result(result)
        assert any("attribution" in v for v in report.violations)


class TestLookupsCounter:
    def test_hits_plus_misses_equals_lookups(self):
        cfg = GpuConfig.baseline(num_sms=4)
        manager = MultiTenantManager(
            cfg, [Tenant(0, TinyWorkload("a"))], warps_per_sm=2,
        )
        result = manager.run()
        lookup_keys = [k for k in result.stats if k.endswith(".lookups")]
        assert lookup_keys  # every TLB now counts probes
        for key in lookup_keys:
            base = key[: -len(".lookups")]
            assert (result.stats.get(f"{base}.hits", 0.0)
                    + result.stats.get(f"{base}.misses", 0.0)
                    == result.stats[key]), base
