"""Tests for the run validator, including corruption detection."""

import pytest

from repro.engine.config import GpuConfig
from repro.gpu.warp import WarpOp
from repro.harness.validate import validate_result
from repro.tenancy.manager import MultiTenantManager
from repro.tenancy.tenant import Tenant


class TinyWorkload:
    def __init__(self, name, pages=10):
        self.name = name
        self.pages = pages

    def build_streams(self, num_warps, rng):
        return [
            iter([WarpOp(3, [(p + 1 + w * 50) << 12])
                  for p in range(self.pages)])
            for w in range(num_warps)
        ]


@pytest.fixture(scope="module", params=["baseline", "static", "dws", "dwspp"])
def clean_result(request):
    cfg = GpuConfig.baseline(num_sms=4).with_policy(request.param)
    manager = MultiTenantManager(
        cfg,
        [Tenant(0, TinyWorkload("a", 30)), Tenant(1, TinyWorkload("b", 5))],
        warps_per_sm=2,
    )
    return manager.run()


class TestCleanRunsValidate:
    def test_no_violations(self, clean_result):
        report = validate_result(clean_result)
        assert report.ok, report.violations
        assert report.checks_run > 10

    def test_raise_if_failed_noop_on_clean(self, clean_result):
        validate_result(clean_result).raise_if_failed()


class TestCorruptionDetected:
    def corrupt(self, result, **stat_overrides):
        result.stats.update(stat_overrides)
        return validate_result(result)

    def make_result(self):
        cfg = GpuConfig.baseline(num_sms=4)
        manager = MultiTenantManager(
            cfg, [Tenant(0, TinyWorkload("a"))], warps_per_sm=2,
        )
        return manager.run()

    def test_lost_walk_detected(self):
        result = self.make_result()
        result.stats["pws.completed.tenant0"] -= 1
        report = validate_result(result)
        assert not report.ok
        assert any("enqueued" in v for v in report.violations)

    def test_bogus_share_detected(self):
        result = self.make_result()
        result.stats["pws.walker_share.tenant0"] = 1.7
        report = validate_result(result)
        assert any("not a fraction" in v for v in report.violations)

    def test_impossible_stolen_count_detected(self):
        result = self.make_result()
        result.stats["pws.stolen.tenant0"] = 10_000.0
        report = validate_result(result)
        assert any("stolen" in v for v in report.violations)

    def test_instruction_accounting_detected(self):
        result = self.make_result()
        result.tenants[0].instructions += 5
        report = validate_result(result)
        assert any("instructions" in v for v in report.violations)

    def test_raise_if_failed_raises(self):
        result = self.make_result()
        result.stats["pws.walker_share.tenant0"] = -3.0
        with pytest.raises(AssertionError):
            validate_result(result).raise_if_failed()
