"""Tests for experiment-result containers and table rendering."""

import math

import pytest

from repro.harness.reporting import (
    ExperimentResult,
    arithmetic_mean,
    format_table,
    format_wall_summary,
    geomean,
)


class TestGeomean:
    def test_basic(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([2, 2, 2]) == pytest.approx(2.0)

    def test_ignores_nonpositive(self):
        assert geomean([0.0, 4.0]) == pytest.approx(4.0)

    def test_empty_is_zero(self):
        assert geomean([]) == 0.0

    def test_matches_closed_form(self):
        vals = [1.5, 2.5, 0.75]
        expected = math.prod(vals) ** (1 / 3)
        assert geomean(vals) == pytest.approx(expected)


def test_arithmetic_mean():
    assert arithmetic_mean([1, 2, 3]) == 2.0
    assert arithmetic_mean([]) == 0.0


class TestExperimentResult:
    def make(self):
        r = ExperimentResult("figX", "demo", columns=["pair", "class", "v"])
        r.add_row(pair="A.B", **{"class": "HL"}, v=1.5)
        r.add_row(pair="C.D", **{"class": "HH"}, v=2.0)
        return r

    def test_column_extraction(self):
        r = self.make()
        assert r.column("v") == [1.5, 2.0]

    def test_column_filter(self):
        r = self.make()
        assert r.column("v", where={"class": "HL"}) == [1.5]

    def test_row_for(self):
        r = self.make()
        assert r.row_for(pair="C.D")["v"] == 2.0
        with pytest.raises(KeyError):
            r.row_for(pair="nope")

    def test_format_table_contains_all_cells(self):
        r = self.make()
        text = format_table(r)
        assert "figX" in text
        for token in ("pair", "class", "A.B", "HL", "1.500", "2.000"):
            assert token in text

    def test_format_table_notes(self):
        r = self.make()
        r.notes.append("shape holds")
        assert "note: shape holds" in format_table(r)


class _FakeRun:
    def __init__(self, wall_seconds, events_fired, retries=0):
        self.wall_seconds = wall_seconds
        self.events_fired = events_fired
        self.retries = retries


class TestFormatWallSummary:
    def make(self):
        return {"slow": _FakeRun(2.0, 1000),
                "fast": _FakeRun(0.5, 600),
                "mid": _FakeRun(1.0, 800)}

    def test_sorted_slowest_first_with_totals(self):
        text = format_wall_summary(self.make())
        lines = text.splitlines()
        assert "3 job(s)" in lines[0]
        assert "total 3.50s" in lines[0]
        assert "2,400 events" in lines[0]
        order = [line.split()[0] for line in lines[1:]]
        assert order == ["slow", "mid", "fast"]

    def test_top_truncates_and_says_so(self):
        text = format_wall_summary(self.make(), top=1)
        assert "slow" in text
        assert "mid" not in text
        assert "2 faster job(s) omitted" in text

    def test_empty_input(self):
        assert "0 job(s)" in format_wall_summary({})

    def test_retries_flagged_per_row_and_in_header(self):
        runs = {"clean": _FakeRun(2.0, 1000),
                "flaky": _FakeRun(0.5, 600, retries=1),
                "worse": _FakeRun(1.0, 800, retries=2)}
        text = format_wall_summary(runs)
        assert "3 retried attempt(s)" in text
        flaky_line = next(l for l in text.splitlines() if "flaky" in l)
        assert "[1 retry]" in flaky_line
        worse_line = next(l for l in text.splitlines() if "worse" in l)
        assert "[2 retries]" in worse_line
        clean_line = next(l for l in text.splitlines() if "clean" in l)
        assert "retr" not in clean_line

    def test_no_retries_keeps_legacy_header(self):
        text = format_wall_summary(self.make())
        assert "retried" not in text

    def test_supervision_digest_appended(self):
        from repro.harness.supervision import SupervisionStats

        stats = SupervisionStats(retries=2, requeues=1)
        stats.quarantined["bad/job"] = "RuntimeError: boom"
        text = format_wall_summary(self.make(), supervision=stats)
        assert "supervision:" in text
        assert "quarantined: bad/job — RuntimeError: boom" in text
