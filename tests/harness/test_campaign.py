"""Campaign scheduling: dedup exactness, byte-identical replay, caching."""

import pytest

from repro.harness.campaign import (
    PlanningSession,
    plan_campaign,
    run_campaign,
)
from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.reporting import format_table
from repro.harness.runner import Session

SCALE = 0.05
WARPS = 2
FIGURES = ["fig5", "fig6", "fig7"]
PAIRS = ["HS.MM", "FFT.HS"]


def small_session(tmp_path=None):
    return Session(scale=SCALE, warps_per_sm=WARPS, seed=0,
                   cache_dir=None if tmp_path is None else str(tmp_path))


def serial_tables(figures, pairs):
    """The ground truth: one plain serial session, figures in order."""
    session = small_session()
    out = {}
    for figure in figures:
        kwargs = {"pairs": pairs} if pairs else {}
        out[figure] = format_table(ALL_EXPERIMENTS[figure](session, **kwargs))
    return out


class TestPlanning:
    def test_planning_simulates_nothing(self):
        recorder = PlanningSession(small_session())
        ALL_EXPERIMENTS["fig5"](recorder, pairs=PAIRS)
        assert recorder.simulations_executed == 0
        assert recorder.requested > 0
        assert len(recorder.jobs) > 0

    def test_exact_dedup_counts_across_figures(self):
        # Ground truth from per-figure plans: the combined campaign must
        # request the sum and keep exactly the union of unique jobs.
        session = small_session()
        singles = [plan_campaign(session, [f], pairs=PAIRS) for f in FIGURES]
        union = set()
        for single in singles:
            union.update(single.jobs)

        combined = plan_campaign(session, FIGURES, pairs=PAIRS)
        assert combined.requested == sum(s.requested for s in singles)
        assert set(combined.jobs) == union
        assert combined.unique_jobs == len(union)
        assert combined.deduplicated == combined.requested - len(union)
        # Figures 5/6/7 share their Baseline/DWS/DWS++ pair runs, so the
        # overlap is substantial, not incidental.
        assert combined.deduplicated > 0
        assert combined.unique_jobs < sum(s.unique_jobs for s in singles)

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError, match="fig99"):
            plan_campaign(small_session(), ["fig5", "fig99"])

    def test_figure_order_kept_and_repeats_dropped(self):
        plan = plan_campaign(small_session(), ["fig6", "fig5", "fig6"],
                             pairs=PAIRS)
        assert plan.figures == ("fig6", "fig5")

    def test_all_experiments_plan_without_simulating(self):
        # Planning the full paper is cheap: phantoms, no simulation.
        recorder_base = small_session()
        plan = plan_campaign(recorder_base, None, pairs=PAIRS)
        assert plan.figures == tuple(ALL_EXPERIMENTS)
        assert recorder_base.simulations_executed == 0
        assert not any(f.error for f in plan.per_figure), [
            (f.figure, f.error) for f in plan.per_figure if f.error]
        # fig14's ad-hoc variants are outside the plan by design.
        assert plan.unplanned_custom > 0

    def test_summary_mentions_counts(self):
        plan = plan_campaign(small_session(), ["fig5"], pairs=PAIRS)
        text = plan.summary()
        assert str(plan.requested) in text
        assert str(plan.unique_jobs) in text


class TestRunCampaign:
    def test_cold_campaign_matches_serial_byte_for_byte(self):
        expected = serial_tables(FIGURES, PAIRS)
        report = run_campaign(small_session(), FIGURES, pairs=PAIRS,
                              workers=1)
        got = {f: format_table(r) for f, r in report.results.items()}
        assert got == expected
        assert report.simulated == report.plan.unique_jobs
        assert report.cache_hits == 0

    def test_replay_simulates_nothing_extra(self):
        session = small_session()
        report = run_campaign(session, FIGURES, pairs=PAIRS, workers=1)
        # Every simulation happened in the execute phase; the replay of
        # the figures ran entirely from primed memory.
        assert session.simulations_executed == 0
        assert len(report.job_results) == report.plan.unique_jobs
        assert all(r.wall_seconds > 0 for r in report.job_results.values())
        assert report.sim_wall_seconds > 0

    def test_warm_campaign_hits_disk_cache_everywhere(self, tmp_path):
        cold = run_campaign(small_session(tmp_path), ["fig5"], pairs=PAIRS,
                            workers=1)
        assert cold.simulated == cold.plan.unique_jobs

        warm = run_campaign(small_session(tmp_path), ["fig5"], pairs=PAIRS,
                            workers=1)
        assert warm.simulated == 0
        assert warm.cache_hits == warm.plan.unique_jobs
        got = {f: format_table(r) for f, r in warm.results.items()}
        cold_tables = {f: format_table(r) for f, r in cold.results.items()}
        assert got == cold_tables

    def test_campaign_with_custom_runs_matches_serial(self):
        # fig14 issues run_custom calls the planner cannot describe;
        # they must simulate during replay and still match serial.
        expected = serial_tables(["fig14"], None)
        session = small_session()
        report = run_campaign(session, ["fig14"], workers=1)
        assert format_table(report.results["fig14"]) == expected["fig14"]
        assert report.plan.unplanned_custom > 0
        assert session.simulations_executed == report.plan.unplanned_custom

    def test_parallel_campaign_matches_serial(self):
        expected = serial_tables(["fig5"], PAIRS)
        try:
            report = run_campaign(small_session(), ["fig5"], pairs=PAIRS,
                                  workers=2)
        except (OSError, PermissionError):
            pytest.skip("process creation not permitted in this environment")
        assert format_table(report.results["fig5"]) == expected["fig5"]

    def test_summary_reports_execution(self):
        report = run_campaign(small_session(), ["fig5"], pairs=PAIRS,
                              workers=1)
        text = report.summary()
        assert "executed" in text
        assert f"{report.simulated} simulation(s)" in text


class TestJobSerialization:
    def job(self):
        from repro.engine.config import GpuConfig
        from repro.harness.parallel import Job

        config = (GpuConfig.baseline(num_sms=2).with_policy("dwspp")
                  .with_l2_tlb_entries(512).with_walker_count(8))
        return Job(label="pair/cfg", names=("HS", "MM"), config=config,
                   scale=0.25, warps_per_sm=2, seed=3, max_events=12345)

    def test_roundtrip_preserves_identity(self):
        from repro.harness.campaign import job_from_dict, job_to_dict
        from repro.harness.result_cache import job_key

        job = self.job()
        clone = job_from_dict(job_to_dict(job))
        assert clone == job
        # The property the serve manifest actually relies on: the clone
        # addresses the same cache entry.
        assert job_key(clone) == job_key(job)

    def test_dict_is_json_portable(self):
        import json

        from repro.harness.campaign import job_from_dict, job_to_dict

        job = self.job()
        wire = json.loads(json.dumps(job_to_dict(job)))
        assert job_from_dict(wire) == job

    def test_malformed_input_raises_cleanly(self):
        import pytest as _pytest

        from repro.harness.campaign import job_from_dict, job_to_dict

        with _pytest.raises((ValueError, KeyError, TypeError)):
            job_from_dict({"label": "x"})
        broken = job_to_dict(self.job())
        broken["scale"] = "not-a-number"
        with _pytest.raises((ValueError, KeyError, TypeError)):
            job_from_dict(broken)
