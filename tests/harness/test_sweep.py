"""Tests for the generic parameter sweep."""

import pytest

from repro.engine.config import GpuConfig
from repro.harness.runner import Session
from repro.harness.sweep import Sweep, axis


@pytest.fixture(scope="module")
def session():
    return Session(scale=0.1, warps_per_sm=2)


class TestAxis:
    def test_axis_requires_values(self):
        with pytest.raises(ValueError):
            axis("x", [], lambda c, v: c)


class TestSweepConstruction:
    def test_duplicate_axis_rejected(self, session):
        sweep = Sweep(session)
        sweep.add_axis(axis("policy", ["dws"], lambda c, v: c.with_policy(v)))
        with pytest.raises(ValueError):
            sweep.add_axis(axis("policy", ["static"],
                                lambda c, v: c.with_policy(v)))

    def test_run_without_axes_rejected(self, session):
        with pytest.raises(ValueError):
            Sweep(session).run(["HS.MM"])

    def test_configurations_cross_product(self, session):
        sweep = Sweep(session)
        sweep.add_axis(axis("walkers", [8, 16],
                            lambda c, v: c.with_walker_count(v)))
        sweep.add_axis(axis("policy", ["baseline", "dws", "static"],
                            lambda c, v: c.with_policy(v)))
        combos = sweep.configurations()
        assert len(combos) == 6
        settings = {(c["settings"]["walkers"], c["settings"]["policy"])
                    for c in combos}
        assert (8, "dws") in settings and (16, "static") in settings

    def test_config_transform_applied(self, session):
        sweep = Sweep(session)
        sweep.add_axis(axis("walkers", [8], lambda c, v: c.with_walker_count(v)))
        combo = sweep.configurations()[0]
        assert combo["config"].walkers.num_walkers == 8


class TestSweepRun:
    def test_rows_per_combo_and_pair(self, session):
        sweep = Sweep(session)
        sweep.add_axis(axis("policy", ["baseline", "dws"],
                            lambda c, v: c.with_policy(v)))
        result = sweep.run(["HS.MM"])
        assert len(result.rows) == 2
        assert all(r["total_ipc"] > 0 for r in result.rows)
        assert result.columns == ["policy", "pair", "total_ipc"]

    def test_with_fairness_adds_columns(self, session):
        sweep = Sweep(session)
        sweep.add_axis(axis("policy", ["baseline"],
                            lambda c, v: c.with_policy(v)))
        result = sweep.run(["HS.MM"], with_fairness=True)
        row = result.rows[0]
        assert 0 <= row["fairness"] <= 1
        assert row["weighted_ipc"] > 0

    def test_base_config_respected(self, session):
        base = GpuConfig.baseline().with_l2_tlb_entries(512)
        sweep = Sweep(session, base_config=base)
        sweep.add_axis(axis("policy", ["baseline"],
                            lambda c, v: c.with_policy(v)))
        combo = sweep.configurations()[0]
        assert combo["config"].l2_tlb.entries == 512
