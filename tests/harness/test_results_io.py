"""Tests for JSON results export."""

import json

import pytest

from repro.engine.config import GpuConfig
from repro.gpu.warp import WarpOp
from repro.harness.results_io import (
    export_results,
    load_results,
    result_to_dict,
)
from repro.tenancy.manager import MultiTenantManager
from repro.tenancy.tenant import Tenant


class MiniWorkload:
    name = "mini"

    def build_streams(self, num_warps, rng):
        return [iter([WarpOp(2, [(w + 1) << 12])]) for w in range(num_warps)]


@pytest.fixture(scope="module")
def result():
    cfg = GpuConfig.baseline(num_sms=2).with_policy("dws")
    return MultiTenantManager(cfg, [Tenant(0, MiniWorkload())],
                              warps_per_sm=2).run()


def test_result_to_dict_fields(result):
    d = result_to_dict(result)
    assert d["policy"] == "dws"
    assert d["total_cycles"] == result.total_cycles
    tenant = d["tenants"]["0"]
    assert tenant["workload"] == "mini"
    assert tenant["ipc"] == pytest.approx(result.ipc_of(0))
    assert tenant["executions"][0]["instructions"] > 0
    assert "pws.completed.tenant0" in d["stats"]


def test_export_is_valid_json(result, tmp_path):
    path = tmp_path / "runs.json"
    export_results({"dws": result}, path)
    payload = json.loads(path.read_text())
    assert payload["format"] == 1
    assert "dws" in payload["runs"]


def test_roundtrip(result, tmp_path):
    path = tmp_path / "runs.json"
    export_results({"a": result, "b": result}, path)
    loaded = load_results(path)
    assert set(loaded) == {"a", "b"}
    assert loaded["a"]["total_cycles"] == result.total_cycles


def test_bad_format_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"format": 9, "runs": {}}))
    with pytest.raises(ValueError):
        load_results(path)
