"""Resource governance chaos suite: deterministic budget kills and
host-pressure shrink.

Every scenario drives the resource ladder from injected readings
(``REPRO_FAULTS`` kinds ``rss_spike`` / ``host_pressure``), never from
what the test host happens to be doing, and asserts the ISSUE's
acceptance invariant: governance changes *scheduling*, not *answers* —
any run that completes produces tables byte-identical to an ungoverned
run, and a budget breach becomes a no-retry quarantine with forensics
instead of machine-wide collateral damage.
"""

import pickle

import pytest

from repro.engine.config import GpuConfig
from repro.harness import faults, resources
from repro.harness.campaign import run_campaign
from repro.harness.parallel import Job, run_jobs
from repro.harness.reporting import format_table
from repro.harness.resources import (
    HostPressureMonitor,
    PressurePolicy,
    ResourceBudgetExceeded,
    RssSampler,
    check_rss_budget,
)
from repro.harness.runner import Session
from repro.harness.supervision import (
    DOMAIN_RESOURCE,
    RetryPolicy,
    SupervisionPolicy,
    SupervisionStats,
)

SCALE = 0.05
WARPS = 2
FIGURES = ["fig5"]
PAIRS = ["HS.MM"]

QUICK = SupervisionPolicy(retry=RetryPolicy(max_attempts=3,
                                            base_delay=0.001))


@pytest.fixture(autouse=True)
def _clean_env():
    from repro.integrity import clear_install
    faults.clear_faults()
    clear_install()
    yield
    faults.clear_faults()
    clear_install()


def small_session():
    return Session(scale=SCALE, warps_per_sm=WARPS, seed=0)


def tiny_job(label, pair="HS.MM", seed=0, max_rss_mb=None):
    return Job(label=label, names=tuple(pair.split(".")),
               config=GpuConfig.baseline(num_sms=2), scale=SCALE,
               warps_per_sm=WARPS, seed=seed, max_rss_mb=max_rss_mb)


def spike(label="*", rss_mb=4096.0):
    return faults.FaultSpec(kind=faults.KIND_RSS_SPIKE, label=label,
                            rss_mb=rss_mb)


def pressure(available_mb=0.0, load=0.0):
    return faults.FaultSpec(kind=faults.KIND_HOST_PRESSURE,
                            available_mb=available_mb, load=load)


class TestReadings:
    def test_rss_spike_overrides_current_rss(self):
        faults.install_faults([spike(rss_mb=1234.5)])
        assert resources.current_rss_mb() == 1234.5
        assert resources.lifetime_peak_rss_mb() == 1234.5

    def test_rss_spike_filters_by_label(self):
        faults.install_faults([spike(label="fat-job", rss_mb=999.0)])
        assert resources.current_rss_mb("fat-job") == 999.0
        real = resources.current_rss_mb("other-job")
        assert real != 999.0

    def test_host_pressure_overrides_available_and_load(self):
        faults.install_faults([pressure(available_mb=12.0, load=64.0)])
        assert resources.read_available_mb() == 12.0
        assert resources.read_load_per_cpu() == 64.0

    def test_real_readings_are_sane(self):
        # A live Linux process has a nonzero RSS; MemAvailable is either
        # unreadable (None == "no signal") or positive.
        assert resources.current_rss_mb() > 0.0
        available = resources.read_available_mb()
        assert available is None or available > 0.0
        assert resources.read_load_per_cpu() >= 0.0

    def test_resource_reading_rejects_non_reading_kind(self):
        with pytest.raises(ValueError):
            faults.resource_reading("raise")


class TestRssSampler:
    def test_tracks_injected_peak(self):
        faults.install_faults([spike(rss_mb=512.0)])
        with RssSampler("x", interval_s=0.0) as sampler:
            pass
        assert sampler.peak_mb >= 512.0
        assert sampler.samples >= 2  # entry + exit

    def test_snapshot_is_json_portable(self):
        faults.install_faults([spike(rss_mb=512.0)])
        with RssSampler("x", interval_s=0.0) as sampler:
            pass
        snap = sampler.snapshot()
        assert snap["peak_rss_mb"] >= 512.0
        assert snap["lifetime_hwm_mb"] >= 512.0
        assert snap["samples"] == sampler.samples

    def test_check_rss_budget(self):
        faults.install_faults([spike(rss_mb=512.0)])
        sampler = RssSampler("x", interval_s=0.0)
        check_rss_budget("x", None, sampler)           # no budget: no-op
        check_rss_budget("x", 1024.0, sampler)         # under budget
        with pytest.raises(ResourceBudgetExceeded) as excinfo:
            check_rss_budget("x", 256.0, sampler)
        err = excinfo.value
        assert err.observed_mb >= 512.0
        assert err.budget_mb == 256.0
        assert err.resource == "rss"


class TestBudgetError:
    def test_pickle_roundtrip_keeps_fields(self):
        err = ResourceBudgetExceeded(
            "job 'a' peak RSS 600.0 MB exceeded its 256 MB budget",
            resource="rss", observed_mb=600.0, budget_mb=256.0, label="a")
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, ResourceBudgetExceeded)
        assert clone.observed_mb == 600.0
        assert clone.budget_mb == 256.0
        assert clone.resource == "rss"
        assert clone.context["label"] == "a"
        details = clone.details()
        assert details["observed_mb"] == 600.0
        assert details["budget_mb"] == 256.0


class TestBudgetQuarantine:
    def test_breach_quarantines_without_retry(self):
        faults.install_faults([spike(label="fat", rss_mb=4096.0)])
        stats = SupervisionStats()
        results = run_jobs(
            [tiny_job("fat", max_rss_mb=256.0), tiny_job("lean")],
            workers=1, supervision=QUICK, stats=stats)
        assert set(results) == {"lean"}
        assert "fat" in stats.quarantined
        assert "ResourceBudgetExceeded" in stats.quarantined["fat"]
        # deterministic failure: one attempt, zero retries burned
        assert stats.attempts["fat"] == 1
        assert stats.retries == 0
        assert stats.failures == {DOMAIN_RESOURCE: 1}

    def test_breach_captures_forensics_with_resources_block(self, tmp_path):
        from repro.integrity import IntegrityConfig, install, load_bundle

        install(IntegrityConfig(forensics_dir=str(tmp_path)))
        faults.install_faults([spike(rss_mb=4096.0)])
        stats = SupervisionStats()
        run_jobs([tiny_job("fat", max_rss_mb=256.0)], workers=1,
                 supervision=QUICK, stats=stats)
        assert "fat" in stats.forensics
        assert "[bundle: " in stats.quarantined["fat"]

        bundle = load_bundle(stats.forensics["fat"])
        assert bundle["error"]["type"] == "ResourceBudgetExceeded"
        assert bundle["error"]["observed_mb"] >= 4096.0
        assert bundle["error"]["budget_mb"] == 256.0
        assert bundle["job"]["label"] == "fat"
        assert bundle["resources"]["peak_rss_mb"] >= 4096.0
        assert bundle["resources"]["samples"] >= 1

    def test_unbudgeted_job_ignores_rss_faults(self):
        faults.install_faults([spike(rss_mb=10**6)])
        stats = SupervisionStats()
        results = run_jobs([tiny_job("a")], workers=1, supervision=QUICK,
                           stats=stats)
        assert results["a"].total_cycles > 0
        assert stats.ok

    def test_generous_budget_passes(self):
        stats = SupervisionStats()
        results = run_jobs([tiny_job("a", max_rss_mb=1e6)], workers=1,
                           supervision=QUICK, stats=stats)
        assert results["a"].total_cycles > 0
        assert stats.ok
        assert not stats.quarantined

    def test_breach_crosses_process_boundary(self):
        # The exception must pickle back from a pool worker and still
        # quarantine without retry.
        faults.install_faults([spike(label="fat", rss_mb=4096.0)])
        stats = SupervisionStats()
        try:
            results = run_jobs(
                [tiny_job("fat", max_rss_mb=256.0), tiny_job("lean")],
                workers=2, supervision=QUICK, stats=stats)
        except (OSError, PermissionError):
            pytest.skip("process creation not permitted in this environment")
        assert set(results) == {"lean"}
        assert "fat" in stats.quarantined
        assert stats.attempts["fat"] == 1
        assert stats.failures.get(DOMAIN_RESOURCE) == 1

    def test_unsupervised_breach_raises(self):
        faults.install_faults([spike(rss_mb=4096.0)])
        with pytest.raises(ResourceBudgetExceeded):
            run_jobs([tiny_job("fat", max_rss_mb=256.0)], workers=1)


class TestCampaignDeterminism:
    """The acceptance scenario: injected rss_spike quarantines jobs; a
    re-run without injection is byte-identical to a fault-free run."""

    def test_quarantine_then_clean_rerun_matches_fault_free(self):
        clean = run_campaign(small_session(), FIGURES, pairs=PAIRS,
                             workers=1)
        assert clean.ok
        expected = {f: format_table(r) for f, r in clean.results.items()}

        faults.install_faults([spike(rss_mb=4096.0)])
        hurt = run_campaign(small_session(), FIGURES, pairs=PAIRS,
                            workers=1, supervision=QUICK, max_rss_mb=256.0)
        assert not hurt.ok
        assert len(hurt.quarantined) == hurt.plan.unique_jobs
        assert hurt.supervision.failures.get(DOMAIN_RESOURCE) \
            == hurt.plan.unique_jobs
        assert hurt.supervision.retries == 0

        faults.clear_faults()
        rerun = run_campaign(small_session(), FIGURES, pairs=PAIRS,
                             workers=1, supervision=QUICK, max_rss_mb=256.0)
        assert rerun.ok
        got = {f: format_table(r) for f, r in rerun.results.items()}
        assert got == expected


class TestPressurePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            PressurePolicy(min_available_mb=-1.0)
        with pytest.raises(ValueError):
            PressurePolicy(max_load_per_cpu=0.0)
        with pytest.raises(ValueError):
            PressurePolicy(shrink_factor=0.0)
        with pytest.raises(ValueError):
            PressurePolicy(shrink_factor=1.5)

    def test_default(self):
        policy = PressurePolicy.default()
        assert policy.min_available_mb > 0
        assert 0 < policy.shrink_factor <= 1


class TestHostPressureMonitor:
    def _monitor(self):
        return HostPressureMonitor(PressurePolicy(min_interval_s=0.0))

    def test_memory_pressure_shrinks_workers(self):
        faults.install_faults([pressure(available_mb=0.0)])
        monitor = self._monitor()
        assert monitor.allowed_workers(4) == 2
        assert monitor.allowed_workers(1) == 1  # floored, never zero
        assert monitor.shrinks >= 1

    def test_load_pressure_shrinks_workers(self):
        faults.install_faults([pressure(available_mb=10**6, load=64.0)])
        monitor = self._monitor()
        reading = monitor.sample()
        assert reading.load_pressured and not reading.memory_pressured
        assert monitor.allowed_workers(4) == 2

    def test_unpressured_keeps_configured_count(self):
        faults.install_faults([pressure(available_mb=10**6, load=0.0)])
        monitor = self._monitor()
        assert monitor.allowed_workers(4) == 4
        assert monitor.shrinks == 0

    def test_throttle_reuses_last_reading(self):
        monitor = HostPressureMonitor(PressurePolicy(min_interval_s=60.0))
        first = monitor.sample()
        second = monitor.sample()
        assert second is first
        assert monitor.samples == 1
        assert monitor.sample(force=True) is not first

    def test_snapshot_schema(self):
        faults.install_faults([pressure(available_mb=12.0, load=64.0)])
        snap = self._monitor().snapshot()
        assert snap["pressured"] is True
        assert snap["memory_pressured"] is True
        assert snap["load_pressured"] is True
        assert snap["available_mb"] == 12.0
        assert snap["load_per_cpu"] == 64.0
        assert set(snap["watermarks"]) == {"min_available_mb",
                                           "max_load_per_cpu"}
        for key in ("samples", "pressured_samples", "shrinks"):
            assert snap[key] >= 0


class TestPressureShrinkDispatch:
    def test_shrunk_pool_produces_identical_results(self):
        jobs = [tiny_job("a"), tiny_job("b", pair="FFT.HS"),
                tiny_job("c", seed=1)]
        clean = run_jobs(jobs, workers=1)
        faults.install_faults([pressure(available_mb=0.0)])
        stats = SupervisionStats()
        policy = SupervisionPolicy(
            retry=RetryPolicy(max_attempts=3, base_delay=0.001),
            pressure=PressurePolicy(min_interval_s=0.0))
        try:
            governed = run_jobs(jobs, workers=2, supervision=policy,
                                stats=stats)
        except (OSError, PermissionError):
            pytest.skip("process creation not permitted in this environment")
        assert stats.pressure_shrinks >= 1
        assert set(governed) == set(clean)
        for label in clean:
            assert governed[label].total_cycles == clean[label].total_cycles

    def test_pressure_shrinks_land_in_report_schema(self):
        faults.install_faults([pressure(available_mb=0.0)])
        stats = SupervisionStats()
        policy = SupervisionPolicy(
            retry=RetryPolicy(max_attempts=3, base_delay=0.001),
            pressure=PressurePolicy(min_interval_s=0.0))
        try:
            run_jobs([tiny_job("a"), tiny_job("b", pair="FFT.HS")],
                     workers=2, supervision=policy, stats=stats)
        except (OSError, PermissionError):
            pytest.skip("process creation not permitted in this environment")
        doc = stats.to_dict()
        assert doc["pressure_shrinks"] == stats.pressure_shrinks
        assert stats.pressure_shrinks >= 1
        if stats.pressure_shrinks:
            assert "pressure shrinks" in stats.summary()
