"""Tests for the caching session runner."""

import pytest

from repro.engine.config import GpuConfig
from repro.harness.runner import Session


@pytest.fixture(scope="module")
def session():
    # tiny scale keeps harness tests quick
    return Session(scale=0.15, warps_per_sm=2)


class TestRunCaching:
    def test_same_pair_same_config_cached(self, session):
        cfg = GpuConfig.baseline()
        r1 = session.run_pair("HS.MM", cfg)
        n = session.cached_runs
        r2 = session.run_pair("HS.MM", cfg)
        assert r1 is r2
        assert session.cached_runs == n

    def test_different_policy_not_cached_together(self, session):
        r1 = session.run_pair("HS.MM", GpuConfig.baseline())
        r2 = session.run_pair("HS.MM", GpuConfig.baseline().with_policy("dws"))
        assert r1 is not r2

    def test_run_names_matches_run_pair(self, session):
        r1 = session.run_pair("HS.MM", GpuConfig.baseline())
        r2 = session.run_names(["HS", "MM"], GpuConfig.baseline())
        assert r1 is r2


class TestStandalone:
    def test_standalone_measurement_fields(self, session):
        m = session.standalone("HS")
        assert m.workload == "HS"
        assert m.ipc > 0
        assert m.walk_latency > 0

    def test_standalone_cached(self, session):
        m1 = session.standalone("HS")
        m2 = session.standalone("HS")
        assert m1 is m2

    def test_standalone_strips_policy_and_separation(self, session):
        base = session.standalone("HS")
        dws = session.standalone("HS", GpuConfig.baseline().with_policy("dws"))
        sep = session.standalone(
            "HS", GpuConfig.baseline().with_separate_tlb_and_walkers()
        )
        # all three normalize to the same baseline stand-alone run
        assert base is dws is sep

    def test_standalone_ipcs_keyed_by_tenant_index(self, session):
        ipcs = session.standalone_ipcs(["HS", "MM"])
        assert set(ipcs) == {0, 1}
        assert all(v > 0 for v in ipcs.values())

    def test_resource_variant_standalone_is_distinct(self, session):
        base = session.standalone("HS")
        small = session.standalone(
            "HS", GpuConfig.baseline().with_l2_tlb_entries(512)
        )
        assert small is not base
