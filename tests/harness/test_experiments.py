"""Tests for experiment definitions at a tiny scale.

These check the shape of each experiment's output (columns, rows,
normalizations), not the paper's magnitudes; the benchmarks reproduce
the magnitudes at full scale.
"""

import pytest

from repro.harness import Session
from repro.harness.experiments import (
    ALL_EXPERIMENTS,
    fig2_motivation_throughput,
    fig5_throughput,
    fig9_share_coupling,
    fig10_aggressiveness,
    fig11_alternatives,
    fig13_multi_tenant,
    fig14_large_pages,
    table3_interleaving_baseline,
    table6_stealing,
)

PAIRS = ["HS.MM", "GUPS.JPEG"]  # one agnostic, one VM-sensitive


@pytest.fixture(scope="module")
def session():
    return Session(scale=0.15, warps_per_sm=2)


def test_all_experiments_registered():
    assert set(ALL_EXPERIMENTS) == {
        "fig2", "fig3", "table3", "fig5", "fig6", "fig7", "table5",
        "table6", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
        "fig14",
    }


class TestFig2:
    def test_baseline_column_normalized_to_one(self, session):
        res = fig2_motivation_throughput(session, pairs=PAIRS)
        for row in res.rows:
            if not str(row["pair"]).startswith("gmean"):
                assert row["baseline"] == 1.0

    def test_class_and_overall_gmeans_present(self, session):
        res = fig2_motivation_throughput(session, pairs=PAIRS)
        names = [r["pair"] for r in res.rows]
        assert "gmean[all]" in names
        assert "gmean[LL]" in names and "gmean[HM]" in names


class TestFig5:
    def test_columns(self, session):
        res = fig5_throughput(session, pairs=PAIRS)
        assert res.columns == ["pair", "class", "baseline", "dws", "dwspp"]

    def test_vm_sensitive_note(self, session):
        res = fig5_throughput(session, pairs=PAIRS)
        assert any("VM-sensitive" in n for n in res.notes)


class TestTables:
    def test_table3_has_mean_rows_per_class(self, session):
        res = table3_interleaving_baseline(session)
        means = [r for r in res.rows if r["pair"] == "arith. mean"]
        assert len(means) == 6  # one per class

    def test_table6_reports_percentages(self, session):
        res = table6_stealing(session)
        for row in res.rows:
            assert 0 <= row["tenant1_pct"] <= 100
            assert 0 <= row["tenant2_pct"] <= 100
        configs = {r["config"] for r in res.rows}
        assert configs == {"dws", "dwspp"}


class TestFig9:
    def test_shares_are_fractions(self, session):
        res = fig9_share_coupling(session, pairs=("GUPS.JPEG",))
        assert len(res.rows) == 4  # 2 configs x 2 tenants
        for row in res.rows:
            assert 0 <= row["pw_share"] <= 1
            assert 0 <= row["tlb_share"] <= 1


class TestFig10:
    def test_has_both_metrics_per_class(self, session):
        res = fig10_aggressiveness(session, pairs=PAIRS)
        metrics = {(r["class"], r["metric"]) for r in res.rows}
        assert ("All", "fairness") in metrics
        assert ("All", "throughput") in metrics

    def test_fairness_rows_bounded(self, session):
        res = fig10_aggressiveness(session, pairs=PAIRS)
        for row in res.rows:
            if row["metric"] == "fairness":
                for col in ("baseline", "dws", "dwspp"):
                    assert 0 <= row[col] <= 1.0 + 1e-9


class TestFig11:
    def test_all_five_configs(self, session):
        res = fig11_alternatives(session, pairs=PAIRS)
        assert res.columns == ["class", "baseline", "static", "mask",
                               "dws", "mask_dws"]
        all_row = res.row_for(**{"class": "All"})
        assert all_row["baseline"] == pytest.approx(1.0)


class TestFig13:
    def test_three_and_four_tenants(self, session):
        res = fig13_multi_tenant(session, combos=("QTC.MM.HS",
                                                  "BLK.QTC.JPEG.FFT"))
        assert [r["tenants"] for r in res.rows] == [3, 4]
        for row in res.rows:
            assert row["dws"] > 0 and row["dwspp"] > 0


class TestFig14:
    def test_large_page_runs_complete(self, session):
        res = fig14_large_pages(session, pairs=("GUPS.JPEG",))
        row = res.row_for(pair="GUPS.JPEG")
        assert row["baseline"] == 1.0
        assert row["dws"] > 0
