"""Unit and property tests for the stats primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.stats import (
    Accumulator,
    Counter,
    Histogram,
    OccupancySampler,
    StatsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("c")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestAccumulator:
    def test_mean_over_values(self):
        a = Accumulator("a")
        for v in (1.0, 2.0, 3.0):
            a.add(v)
        assert a.mean == pytest.approx(2.0)
        assert a.min == 1.0 and a.max == 3.0

    def test_empty_mean_is_zero(self):
        assert Accumulator("a").mean == 0.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    def test_mean_matches_arithmetic_mean(self, values):
        a = Accumulator("a")
        for v in values:
            a.add(v)
        assert a.mean == pytest.approx(sum(values) / len(values))


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("h", [1, 10, 100])
        for v in (0, 1, 5, 50, 500):
            h.add(v)
        assert h.buckets == [2, 1, 1, 1]
        assert h.count == 5

    def test_cdf(self):
        h = Histogram("h", [1, 10])
        for v in (0, 2, 20, 30):
            h.add(v)
        assert h.fraction_at_or_below(1) == pytest.approx(0.25)
        assert h.fraction_at_or_below(10) == pytest.approx(0.5)

    def test_requires_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", [])

    def test_cdf_requires_known_edge(self):
        h = Histogram("h", [1])
        with pytest.raises(ValueError):
            h.fraction_at_or_below(2)


class TestOccupancySampler:
    def test_time_weighted_mean(self):
        # level 2 for 10 cycles, then level 4 for 10 cycles -> mean 3
        s = OccupancySampler("s", start_time=0, level=2)
        s.update(10, 4)
        assert s.mean(now=20) == pytest.approx(3.0)

    def test_mean_with_no_elapsed_time(self):
        s = OccupancySampler("s", start_time=5, level=7)
        assert s.mean(now=5) == 7

    def test_rejects_time_reversal(self):
        s = OccupancySampler("s")
        s.update(10, 1)
        with pytest.raises(ValueError):
            s.update(5, 2)

    @given(
        st.lists(
            st.tuples(st.integers(1, 100), st.floats(0, 50)),
            min_size=1, max_size=20,
        )
    )
    def test_mean_bounded_by_extremes(self, steps):
        s = OccupancySampler("s", start_time=0, level=1.0)
        now = 0
        levels = [1.0]
        for dt, level in steps:
            now += dt
            s.update(now, level)
            levels.append(level)
        m = s.mean(now=now + 1)
        assert min(levels) - 1e-9 <= m <= max(levels) + 1e-9


class TestStatsRegistry:
    def test_lazy_creation_and_identity(self):
        r = StatsRegistry()
        c1 = r.counter("x")
        c2 = r.counter("x")
        assert c1 is c2

    def test_kind_conflict_raises(self):
        r = StatsRegistry()
        r.counter("x")
        with pytest.raises(TypeError):
            r.accumulator("x")

    def test_snapshot_flattens(self):
        r = StatsRegistry()
        r.counter("tlb.hits").inc(3)
        r.accumulator("walk.latency").add(100)
        snap = r.snapshot()
        assert snap["tlb.hits"] == 3
        assert snap["walk.latency.mean"] == 100
        assert snap["walk.latency.count"] == 1

    def test_names_prefix_filter(self):
        r = StatsRegistry()
        r.counter("a.one")
        r.counter("b.two")
        assert r.names("a.") == ["a.one"]
