"""Tests for event cancellation through the simulator."""

from repro.engine.simulator import Simulator


def test_cancelled_event_never_fires():
    sim = Simulator()
    fired = []
    event = sim.at(10, lambda: fired.append("cancelled"))
    sim.at(20, lambda: fired.append("kept"))
    event.cancel()
    sim.drain()
    assert fired == ["kept"]
    assert sim.now == 20


def test_cancel_from_within_an_earlier_event():
    sim = Simulator()
    fired = []
    later = sim.at(10, lambda: fired.append("later"))
    sim.at(5, later.cancel)
    sim.drain()
    assert fired == []


def test_cancelled_events_do_not_stall_run_until():
    sim = Simulator()
    e1 = sim.at(3, lambda: None)
    e1.cancel()
    sim.run(until=100)
    assert sim.now == 100


def test_rescheduling_pattern():
    """The common timeout idiom: cancel and re-arm."""
    sim = Simulator()
    fired = []
    timeout = sim.at(50, lambda: fired.append("old"))

    def rearm():
        timeout.cancel()
        sim.at(70, lambda: fired.append("new"))

    sim.at(10, rearm)
    sim.drain()
    assert fired == ["new"]
