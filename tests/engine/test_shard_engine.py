"""Unit tests for the sharded engine's primitives (DESIGN.md §13).

The integration suite (``tests/integration/test_shard_differential.py``)
proves whole-run byte-identity; these tests pin the pieces that identity
rests on — the :class:`OrderKey` total order, the keyed queue's pop
order, the counting streams behind the completion floor, and the
engine/shard-count selection plumbing.
"""

import os

import pytest

from repro.engine.parallel_sim import (
    DEFAULT_WINDOW,
    ParallelSimulator,
    SHARDS_ENV,
    shards_from_env,
)
from repro.engine.shard import Ctx, CountingStream, KeyedQueue, OrderKey


# ----------------------------------------------------------------------
# OrderKey: the serial (time, seq) order without a global counter
# ----------------------------------------------------------------------
class TestOrderKey:
    def test_time_dominates(self):
        root = OrderKey(0, 0, None)
        assert OrderKey(5, 9, root) < OrderKey(6, 0, root)
        assert not OrderKey(6, 0, root) < OrderKey(5, 9, root)

    def test_same_parent_ties_on_push_index(self):
        parent = OrderKey(3, 0, None)
        a = OrderKey(7, 0, parent)
        b = OrderKey(7, 1, parent)
        assert a < b
        assert not b < a

    def test_launch_push_precedes_event_push(self):
        # A None parent is a pre-run launch push: at equal fire times it
        # precedes anything pushed from inside an event.
        launch = OrderKey(4, 2, None)
        from_event = OrderKey(4, 0, OrderKey(2, 0, None))
        assert launch < from_event
        assert not from_event < launch

    def test_equal_time_resolves_by_pushing_execution(self):
        # Two entries for cycle 10, pushed by executions that fired at
        # cycle 10 in a known order: the earlier execution's push wins
        # regardless of intra-execution indices.
        early = OrderKey(10, 0, OrderKey(10, 0, None))
        late = OrderKey(10, 5, OrderKey(10, 1, None))
        assert OrderKey(10, 9, early) < OrderKey(10, 0, late)

    def test_not_less_than_self(self):
        k = OrderKey(1, 1, OrderKey(0, 0, None))
        assert not k < k

    def test_deep_chain_terminates(self):
        # Same-time ancestor chains walk iteratively, not recursively.
        a = OrderKey(0, 0, None)
        b = OrderKey(0, 1, None)
        for _ in range(5000):
            a = OrderKey(0, 0, a)
            b = OrderKey(0, 0, b)
        assert a < b
        assert not b < a


# ----------------------------------------------------------------------
# KeyedQueue
# ----------------------------------------------------------------------
class TestKeyedQueue:
    def test_pushes_from_one_ctx_pop_fifo_at_equal_time(self):
        q = KeyedQueue()
        fired = []
        for tag in ("a", "b", "c"):
            q.push_raw(5, fired.append, (tag,))
        while True:
            entry = q.take()
            if entry is None:
                break
            entry[3](*entry[4])
        assert fired == ["a", "b", "c"]
        assert len(q) == 0

    def test_intent_replay_sorts_by_park_sequence(self):
        # Intents reuse their execution's key; the sub field (the park
        # sequence) must decide the tie without ever comparing fn.
        q = KeyedQueue()
        key = OrderKey(3, 0, None)
        fired = []
        q.push_keyed(3, key, 2, fired.append, ("second",))
        q.push_keyed(3, key, 1, fired.append, ("first",))
        for _ in range(2):
            entry = q.take()
            entry[3](*entry[4])
        assert fired == ["first", "second"]

    def test_handle_push_supports_cancellation(self):
        q = KeyedQueue()
        fired = []
        handle = q.push(4, fired.append, "x")
        handle.cancel()
        entry = q.take()
        entry[3](*entry[4])
        assert fired == []

    def test_cross_queue_pushes_interleave_serially(self):
        # Two queues sharing one ctx (the serial-step arrangement) mint
        # globally ordered keys: merging the fronts reproduces the push
        # order even though the entries live in different heaps.
        a, b = KeyedQueue(), KeyedQueue()
        ctx = Ctx(None)
        a.ctx = ctx
        b.ctx = ctx
        a.push_raw(2, lambda: None, ())
        b.push_raw(2, lambda: None, ())
        a.push_raw(2, lambda: None, ())
        (_, ka, _), (_, kb, _) = a.front_key(), b.front_key()
        assert ka < kb  # a's first push precedes b's
        a.take()
        (_, ka2, _) = a.front_key()
        assert kb < ka2  # b's push precedes a's second push


# ----------------------------------------------------------------------
# CountingStream: the completion floor's measuring stick
# ----------------------------------------------------------------------
class TestCountingStream:
    def test_materializes_and_counts_down(self):
        s = CountingStream(iter([10, 20, 30]))
        assert s.remaining == 3
        assert next(s) == 10
        assert s.remaining == 2
        assert list(s) == [20, 30]
        assert s.remaining == 0

    def test_done_flag_set_on_exhaustion(self):
        s = CountingStream([1])
        assert not s.done
        next(s)
        assert not s.done  # not done until a pull *fails*
        with pytest.raises(StopIteration):
            next(s)
        assert s.done

    def test_empty_stream(self):
        s = CountingStream([])
        assert s.remaining == 0
        with pytest.raises(StopIteration):
            next(s)
        assert s.done


# ----------------------------------------------------------------------
# Selection plumbing
# ----------------------------------------------------------------------
class TestShardsFromEnv:
    def setup_method(self):
        os.environ.pop(SHARDS_ENV, None)

    teardown_method = setup_method

    def test_default_when_unset(self):
        assert shards_from_env(1) == 1
        assert shards_from_env(7) == 7

    def test_reads_value(self):
        os.environ[SHARDS_ENV] = "4"
        assert shards_from_env(1) == 4

    def test_rejects_garbage(self):
        os.environ[SHARDS_ENV] = "many"
        with pytest.raises(ValueError):
            shards_from_env()

    def test_rejects_nonpositive(self):
        os.environ[SHARDS_ENV] = "0"
        with pytest.raises(ValueError):
            shards_from_env()


class TestParallelSimulatorConstruction:
    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            ParallelSimulator(0)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            ParallelSimulator(2, backend="fibers")

    def test_window_env_override(self):
        os.environ["REPRO_SHARD_WINDOW"] = "128"
        try:
            assert ParallelSimulator(2).window == 128
        finally:
            del os.environ["REPRO_SHARD_WINDOW"]
        assert ParallelSimulator(2).window == DEFAULT_WINDOW


class TestCampaignShardGuard:
    def test_clamp_math(self):
        from repro.harness.campaign import clamp_workers_for_shards

        # no sharding: pass through untouched, including None
        assert clamp_workers_for_shards(None, 1) == (None, None)
        assert clamp_workers_for_shards(8, 1) == (8, None)
        # inline backend: one core per simulation, nothing to clamp
        assert clamp_workers_for_shards(
            8, 4, cpu_count=8, backend="inline") == (8, None)
        # default worker count becomes the shard-aware budget silently
        assert clamp_workers_for_shards(
            None, 4, cpu_count=8, backend="threads") == (2, None)
        # explicit fit passes through
        assert clamp_workers_for_shards(
            2, 4, cpu_count=8, backend="processes") == (2, None)
        # explicit oversubscription clamps with a warning message
        workers, warning = clamp_workers_for_shards(
            8, 4, cpu_count=8, backend="processes")
        assert workers == 2
        assert "oversubscribes" in warning
        assert "processes" in warning
        # never below one worker
        workers, _ = clamp_workers_for_shards(
            4, 16, cpu_count=4, backend="threads")
        assert workers == 1

    def test_clamp_reads_backend_from_env(self, monkeypatch):
        from repro.harness.campaign import clamp_workers_for_shards

        monkeypatch.delenv("REPRO_SHARD_BACKEND", raising=False)
        # unset environment means the inline default: no clamp
        assert clamp_workers_for_shards(8, 4, cpu_count=8) == (8, None)
        monkeypatch.setenv("REPRO_SHARD_BACKEND", "processes")
        workers, warning = clamp_workers_for_shards(8, 4, cpu_count=8)
        assert workers == 2 and "oversubscribes" in warning
