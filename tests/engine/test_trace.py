"""Tests for the structured tracer and its walk-subsystem integration."""

import pytest

from repro.engine.config import GpuConfig
from repro.engine.trace import TraceRecord, Tracer
from repro.gpu.warp import WarpOp
from repro.tenancy.manager import MultiTenantManager
from repro.tenancy.tenant import Tenant


class TestTracerUnit:
    def test_emit_and_query(self):
        t = Tracer()
        t.emit(5, "walk.start", walker=1)
        t.emit(7, "walk.complete", walker=1)
        assert len(t) == 2
        assert t.count("walk.start") == 1
        assert t.records("walk.complete")[0].time == 7
        assert t.last().kind == "walk.complete"
        assert t.last("walk.start").time == 5

    def test_kind_filtering(self):
        t = Tracer(kinds={"walk.steal"})
        t.emit(1, "walk.start")
        t.emit(2, "walk.steal")
        assert len(t) == 1
        assert t.records()[0].kind == "walk.steal"
        assert not t.wants("walk.start")

    def test_ring_buffer_drops_oldest(self):
        t = Tracer(capacity=3)
        for i in range(5):
            t.emit(i, "x")
        assert len(t) == 3
        assert [r.time for r in t.records()] == [2, 3, 4]
        assert t.dropped == 2
        assert t.emitted == 5

    def test_clear(self):
        t = Tracer(capacity=2)
        t.emit(1, "x")
        t.clear()
        assert len(t) == 0 and t.dropped == 0
        assert t.last() is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_record_repr_includes_fields(self):
        rec = TraceRecord(3, "walk.start", {"walker": 2})
        assert "walk.start" in repr(rec) and "walker=2" in repr(rec)


class StormWorkload:
    """Enough distinct pages from one tenant to force queueing/stealing."""

    name = "storm"

    def build_streams(self, num_warps, rng):
        return [
            iter([WarpOp(0, [(1 + w * 997 + i * 131) << 12])
                  for i in range(20)])
            for w in range(num_warps)
        ]


class QuietWorkload:
    name = "quiet"

    def build_streams(self, num_warps, rng):
        return [iter([WarpOp(50, [0x5000])]) for _ in range(num_warps)]


class TestSubsystemTracing:
    def run_traced(self, policy="dws"):
        cfg = (GpuConfig.baseline(num_sms=4).with_walker_count(4)
               .with_policy(policy))
        manager = MultiTenantManager(
            cfg, [Tenant(0, StormWorkload()), Tenant(1, QuietWorkload())],
            warps_per_sm=3,
        )
        tracer = Tracer()
        manager.gpu.walk_subsystem_for(0).tracer = tracer
        result = manager.run()
        return tracer, result

    def test_walk_lifecycle_recorded(self):
        tracer, result = self.run_traced()
        enq = tracer.count("walk.enqueue")
        done = tracer.count("walk.complete")
        starts = tracer.count("walk.start") + tracer.count("walk.steal")
        assert enq == done == starts > 0

    def test_steal_records_only_under_stealing_policies(self):
        dws_tracer, _ = self.run_traced("dws")
        static_tracer, _ = self.run_traced("static")
        assert dws_tracer.count("walk.steal") > 0
        assert static_tracer.count("walk.steal") == 0

    def test_complete_records_carry_latency(self):
        tracer, _ = self.run_traced()
        for rec in tracer.records("walk.complete"):
            assert rec.fields["latency"] > 0
            assert 1 <= rec.fields["accesses"] <= 4
