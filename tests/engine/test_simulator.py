"""Unit tests for the simulator kernel."""

import pytest

from repro.engine.simulator import SimulationError, Simulator


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.at(10, lambda: seen.append(sim.now))
    sim.drain()
    assert seen == [10]
    assert sim.now == 10


def test_after_schedules_relative_to_now():
    sim = Simulator()
    order = []

    def first():
        order.append(("first", sim.now))
        sim.after(5, lambda: order.append(("second", sim.now)))

    sim.at(3, first)
    sim.drain()
    assert order == [("first", 3), ("second", 8)]


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.at(5, lambda: None)
    sim.drain()
    with pytest.raises(SimulationError):
        sim.at(2, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.after(-1, lambda: None)


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    fired = []
    sim.at(5, lambda: fired.append(5))
    sim.at(50, lambda: fired.append(50))
    sim.run(until=20)
    assert fired == [5]
    assert sim.now == 20
    assert len(sim.events) == 1


def test_stop_when_predicate_halts_run():
    sim = Simulator()
    count = []
    for t in range(1, 10):
        sim.at(t, lambda: count.append(1))
    sim.run(stop_when=lambda: len(count) >= 3)
    assert len(count) == 3


def test_run_returns_event_count():
    sim = Simulator()
    for t in range(4):
        sim.at(t, lambda: None)
    assert sim.run() == 4


def test_events_pass_args():
    sim = Simulator()
    got = []
    sim.at(1, got.append, "payload")
    sim.drain()
    assert got == ["payload"]


def test_max_events_bound():
    sim = Simulator()
    for t in range(10):
        sim.at(t, lambda: None)
    assert sim.run(max_events=4) == 4
    assert len(sim.events) == 6
