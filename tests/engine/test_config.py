"""Tests for configuration dataclasses and variant derivation."""

import pytest

from repro.engine.config import GpuConfig, PolicySpec, TlbConfig, config_key


class TestBaseline:
    def test_matches_paper_table1(self):
        cfg = GpuConfig.baseline()
        assert cfg.sm.num_sms == 30
        assert cfg.sm.l1_tlb.entries == 32
        assert cfg.sm.l1_tlb.mshr_entries == 12
        assert cfg.l2_tlb.entries == 1024
        assert cfg.l2_tlb.associativity == 16
        assert cfg.walkers.num_walkers == 16
        assert cfg.walkers.queue_entries == 192
        assert cfg.walkers.pwc_entries == 128
        assert cfg.sm.l1_cache.size_bytes == 16 * 1024
        assert cfg.l2_cache.size_bytes == 2 * 1024 * 1024
        assert cfg.l2_cache.banks == 16
        assert cfg.dram.channels == 16
        assert cfg.page_size == 4096

    def test_per_walker_queue_split(self):
        cfg = GpuConfig.baseline()
        assert cfg.walkers.per_walker_queue == 12  # 192 / 16


class TestVariants:
    def test_with_policy(self):
        cfg = GpuConfig.baseline().with_policy("dws")
        assert cfg.policy.name == "dws"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            PolicySpec(name="bogus")

    def test_separate_tlb_flags(self):
        cfg = GpuConfig.baseline().with_separate_tlb()
        assert cfg.separate_l2_tlb and not cfg.separate_walkers
        cfg2 = GpuConfig.baseline().with_separate_tlb_and_walkers()
        assert cfg2.separate_l2_tlb and cfg2.separate_walkers

    def test_l2_tlb_sweep(self):
        for entries in (512, 1024, 2048):
            cfg = GpuConfig.baseline().with_l2_tlb_entries(entries)
            assert cfg.l2_tlb.entries == entries

    def test_walker_sweep_scales_queue(self):
        cfg = GpuConfig.baseline().with_walker_count(24)
        assert cfg.walkers.num_walkers == 24
        assert cfg.walkers.queue_entries == 288  # 12 slots per walker

    def test_page_size_variants(self):
        assert GpuConfig.baseline().with_page_size_bits(16).page_size == 64 * 1024
        with pytest.raises(ValueError):
            GpuConfig.baseline().with_page_size_bits(13)

    def test_variants_do_not_mutate_original(self):
        base = GpuConfig.baseline()
        base.with_policy("dws").with_l2_tlb_entries(2048)
        assert base.policy.name == "baseline"
        assert base.l2_tlb.entries == 1024


class TestValidation:
    def test_tlb_divisibility(self):
        with pytest.raises(ValueError):
            TlbConfig(entries=10, associativity=4, hit_latency=1, mshr_entries=4)

    def test_tlb_positive(self):
        with pytest.raises(ValueError):
            TlbConfig(entries=0, associativity=1, hit_latency=1, mshr_entries=1)


def test_config_key_identity_and_difference():
    a = GpuConfig.baseline()
    b = GpuConfig.baseline()
    assert config_key(a) == config_key(b)
    assert config_key(a) != config_key(a.with_policy("dws"))


def test_describe_mentions_policy_and_resources():
    text = GpuConfig.baseline().with_policy("dwspp").describe()
    assert "dwspp" in text and "16 PTWs" in text
