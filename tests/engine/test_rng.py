"""Tests for deterministic named random streams."""

from repro.engine.rng import DeterministicRng


def test_same_seed_same_stream_sequence():
    a = DeterministicRng(7).stream("walks")
    b = DeterministicRng(7).stream("walks")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_are_independent():
    rng = DeterministicRng(7)
    s1 = [rng.stream("one").random() for _ in range(5)]
    s2 = [rng.stream("two").random() for _ in range(5)]
    assert s1 != s2


def test_stream_is_memoized():
    rng = DeterministicRng(0)
    assert rng.stream("x") is rng.stream("x")


def test_consuming_one_stream_does_not_shift_another():
    rng1 = DeterministicRng(3)
    rng2 = DeterministicRng(3)
    # rng1 consumes heavily from "noise" before touching "signal"
    for _ in range(100):
        rng1.stream("noise").random()
    sig1 = [rng1.stream("signal").random() for _ in range(5)]
    sig2 = [rng2.stream("signal").random() for _ in range(5)]
    assert sig1 == sig2


def test_fork_changes_streams_deterministically():
    f1 = DeterministicRng(5).fork("tenant0")
    f2 = DeterministicRng(5).fork("tenant0")
    f3 = DeterministicRng(5).fork("tenant1")
    assert f1.stream("a").random() == f2.stream("a").random()
    assert f1.seed != f3.seed
