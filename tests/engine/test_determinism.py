"""End-to-end determinism of the fast-path kernel.

The calendar queue, event recycling and the tight run loop are only
admissible if they are *invisible*: repeated runs must agree bit for
bit, and a full multi-tenant simulation must produce identical results
under the calendar kernel and the seed heap kernel.
"""

import repro.engine.simulator as simulator_module
from repro.engine.config import GpuConfig
from repro.engine.event import HeapEventQueue
from repro.engine.simulator import Simulator
from repro.tenancy.manager import MultiTenantManager
from repro.tenancy.tenant import Tenant
from repro.workloads.suite import benchmark

SCALE = 0.05


def run_pair(pair="HS.MM", policy="dws", kernel=None):
    previous = simulator_module.EventQueue
    if kernel is not None:
        simulator_module.EventQueue = kernel
    try:
        config = GpuConfig.baseline(num_sms=2).with_policy(policy)
        tenants = [Tenant(i, benchmark(name, scale=SCALE))
                   for i, name in enumerate(pair.split("."))]
        manager = MultiTenantManager(config, tenants, warps_per_sm=2, seed=0)
        return manager.run()
    finally:
        simulator_module.EventQueue = previous


def fingerprint(result):
    return (
        result.total_cycles,
        result.events_fired,
        {t: (s.instructions, s.completed_executions, s.ipc)
         for t, s in result.tenants.items()},
        sorted(result.stats.items()),
    )


class TestSameCycleOrdering:
    def test_zero_delay_chains_run_fifo(self):
        # Callbacks scheduled with after(0, ...) at the same cycle must
        # fire in schedule order — the simulator's components lean on
        # this for e.g. MSHR fill-then-drain sequencing.
        sim = Simulator()
        order = []

        def chain(tag, depth):
            order.append((tag, depth))
            if depth:
                sim.after(0, chain, tag, depth - 1)

        sim.at(5, chain, "a", 2)
        sim.at(5, chain, "b", 2)
        sim.run()
        assert order == [("a", 2), ("b", 2), ("a", 1), ("b", 1),
                         ("a", 0), ("b", 0)]

    def test_mixed_at_and_after_share_one_fifo(self):
        sim = Simulator()
        order = []
        sim.at(3, order.append, "at-first")
        sim.after(3, order.append, "after-second")
        sim.at(3, order.append, "at-third")
        sim.run()
        assert order == ["at-first", "after-second", "at-third"]


class TestRepeatedRuns:
    def test_same_seed_same_everything(self):
        assert fingerprint(run_pair()) == fingerprint(run_pair())


class TestKernelEquivalence:
    def test_calendar_matches_heap_kernel(self):
        calendar = run_pair()
        heap = run_pair(kernel=HeapEventQueue)
        assert fingerprint(calendar) == fingerprint(heap)

    def test_equivalence_holds_across_policies(self):
        for policy in ("baseline", "dwspp"):
            calendar = run_pair(policy=policy)
            heap = run_pair(policy=policy, kernel=HeapEventQueue)
            assert fingerprint(calendar) == fingerprint(heap)
