"""Unit tests for the event queue."""

from repro.engine.event import EventQueue


def test_events_fire_in_time_order():
    q = EventQueue()
    q.push(5, lambda: None)
    q.push(1, lambda: None)
    q.push(3, lambda: None)
    times = []
    while True:
        e = q.pop()
        if e is None:
            break
        times.append(e.time)
    assert times == [1, 3, 5]


def test_same_time_events_fire_fifo():
    q = EventQueue()
    first = q.push(7, "a")
    second = q.push(7, "b")
    assert q.pop() is first
    assert q.pop() is second


def test_cancelled_events_are_skipped():
    q = EventQueue()
    keep = q.push(2, "keep")
    drop = q.push(1, "drop")
    drop.cancel()
    assert q.pop() is keep
    assert q.pop() is None


def test_peek_time_skips_cancelled():
    q = EventQueue()
    drop = q.push(1, "drop")
    q.push(4, "keep")
    drop.cancel()
    assert q.peek_time() == 4


def test_len_tracks_heap_size():
    q = EventQueue()
    assert len(q) == 0
    q.push(1, "x")
    q.push(2, "y")
    assert len(q) == 2
    q.pop()
    assert len(q) == 1


def test_event_ordering_comparison():
    q = EventQueue()
    a = q.push(1, "a")
    b = q.push(1, "b")
    c = q.push(0, "c")
    assert c < a < b
