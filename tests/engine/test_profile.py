"""The engine profiler: event counting, attribution, and reporting."""

from repro.engine.profile import EngineProfiler
from repro.engine.simulator import Simulator


def tick(sim, count):
    if count:
        sim.after(1, tick, sim, count - 1)


class TestCollection:
    def test_counts_only_while_attached(self):
        sim = Simulator()
        profiler = EngineProfiler()
        sim.at(1, tick, sim, 4)
        with profiler.attach(sim):
            sim.run()
        assert profiler.events == 5
        assert sim.profiler is None  # detached afterwards
        sim.at(sim.now + 1, tick, sim, 0)
        sim.run()
        assert profiler.events == 5  # unprofiled run not counted

    def test_components_keyed_by_module_qualname(self):
        sim = Simulator()
        profiler = EngineProfiler()
        sim.at(1, tick, sim, 2)
        with profiler.attach(sim):
            sim.run()
        (name, count), = profiler.component_counts.items()
        assert name == f"{tick.__module__}.tick"
        assert count == 3

    def test_attach_nests_and_restores(self):
        sim = Simulator()
        outer, inner = EngineProfiler(), EngineProfiler()
        sim.at(1, tick, sim, 0)
        with outer.attach(sim):
            with inner.attach(sim):
                sim.run()
        assert inner.events == 1
        assert outer.events == 0  # inner shadowed it for the run
        assert sim.profiler is None


class TestReporting:
    def profiled(self, events=3):
        sim = Simulator()
        profiler = EngineProfiler()
        sim.at(1, tick, sim, events - 1)
        with profiler.attach(sim):
            sim.run()
        return profiler

    def test_top_components_ranked(self):
        profiler = self.profiled()
        top = profiler.top_components(5)
        assert top[0][1] == 3
        assert profiler.top_components(0) == []

    def test_summary_is_json_portable(self):
        import json
        summary = self.profiled().summary(top=5)
        assert summary["events"] == 3
        assert summary["events_per_sec"] > 0
        json.dumps(summary)  # no exotic types

    def test_report_mentions_throughput_and_components(self):
        report = self.profiled().report()
        assert "3 events" in report
        assert "tick" in report

    def test_empty_profiler_reports_zero(self):
        profiler = EngineProfiler()
        assert profiler.events_per_sec == 0.0
        assert "0 events" in profiler.report()
