"""Unit tests for the fast-path kernel primitives behind latency folding:

* :class:`CompletionBatches` — per-timestamp batched completion lists;
* ``schedule_batch`` — one carrier event per distinct timestamp;
* ``push_raw`` — handle-free raw entries, FIFO-ordered against Events;
* ``run_fast`` — the fused pop/fire loop, equivalent to the pop loop.
"""

import pytest

from repro.engine.calendar import CompletionBatches
from repro.engine.event import EventQueue, HeapEventQueue
from repro.engine.simulator import Simulator


class TestCompletionBatches:
    def test_first_add_requests_carrier(self):
        batches = CompletionBatches()
        assert batches.add(5, lambda: None) is True
        assert batches.add(5, lambda: None) is False
        assert batches.add(6, lambda: None) is True
        assert len(batches) == 2
        assert batches.pending_callbacks() == 3

    def test_fire_delivers_in_insertion_order_with_args(self):
        batches = CompletionBatches()
        order = []
        batches.add(9, order.append, (1,))
        batches.add(9, order.append, (2,))
        batches.add(9, order.append, (3,))
        batches.fire(9)
        assert order == [1, 2, 3]
        assert len(batches) == 0
        assert batches.pending_callbacks() == 0

    def test_delivery_observer_sees_each_callback(self):
        batches = CompletionBatches()
        seen = []
        batches.delivery_observer = seen.append
        fn_a, fn_b = (lambda: None), (lambda: None)
        batches.add(3, fn_a)
        batches.add(3, fn_b)
        batches.fire(3)
        assert seen == [fn_a, fn_b]


@pytest.mark.parametrize("queue_cls", [EventQueue, HeapEventQueue])
class TestScheduleBatch:
    def test_one_carrier_per_timestamp(self, queue_cls):
        sim = Simulator()
        sim.events = queue_cls()
        fired = []
        for i in range(4):
            sim.events.schedule_batch(10, fired.append, (i,))
        sim.events.schedule_batch(20, fired.append, (99,))
        # 4 same-cycle callbacks + 1 at another cycle = 2 carrier events
        assert len(sim.events) == 2
        events = sim.run()
        assert events == 2
        assert fired == [0, 1, 2, 3, 99]
        assert sim.now == 20

    def test_batch_fires_at_carrier_position(self, queue_cls):
        """A batch drains where its carrier sits in same-cycle FIFO
        order: callbacks batched before an ordinary push fire before
        it, late additions to the same batch still ride the original
        carrier."""
        sim = Simulator()
        sim.events = queue_cls()
        order = []
        sim.events.schedule_batch(7, order.append, ("batch-early",))
        sim.events.push_raw(7, order.append, ("event",))
        sim.events.schedule_batch(7, order.append, ("batch-late",))
        sim.run()
        assert order == ["batch-early", "batch-late", "event"]


class TestRawEntries:
    def test_raw_and_event_pushes_share_fifo_order(self):
        queue = EventQueue()
        reference = HeapEventQueue()
        schedule = [
            (5, "a"), (3, "b"), (5, "c"), (3, "d"), (5, "e"), (4, "f"),
        ]
        for i, (time, tag) in enumerate(schedule):
            if i % 2:
                queue.push(time, lambda: None)
                reference.push(time, lambda: None)
            else:
                queue.push_raw(time, lambda: None, ())
                reference.push_raw(time, lambda: None, ())
        order = []
        ref_order = []
        while True:
            event = queue.pop()
            if event is None:
                break
            order.append((event.time,))
        while True:
            event = reference.pop()
            if event is None:
                break
            ref_order.append((event.time,))
        assert order == ref_order == sorted(ref_order)

    def test_push_raw_far_future_falls_back_to_event(self):
        """Raw entries outside the calendar ring window must still land
        (wrapped as Events in the heap region) and keep time order."""
        queue = EventQueue()
        queue.push_raw(10, lambda: None, ())
        queue.push_raw(10_000_000, lambda: None, ())
        assert len(queue) == 2
        first = queue.pop()
        second = queue.pop()
        assert (first.time, second.time) == (10, 10_000_000)

    def test_live_count_tracks_raw_entries(self):
        queue = EventQueue()
        queue.push_raw(1, lambda: None, ())
        queue.push_raw(2, lambda: None, ())
        assert len(queue) == 2
        queue.pop()
        assert len(queue) == 1
        queue.pop()
        assert len(queue) == 0


class TestRunFastEquivalence:
    @staticmethod
    def _schedule(sim, log):
        def reschedule(tag, depth):
            log.append((sim.now, tag))
            if depth:
                sim.events.push_raw(sim.now + 3, reschedule,
                                    (tag + "'", depth - 1))

        for i, tag in enumerate("abcd"):
            sim.events.push_raw(i % 2, reschedule, (tag, 2))
        sim.events.push(1, reschedule, "ev", 1)

    def test_fused_loop_matches_pop_loop(self):
        fast_sim = Simulator()
        fast_log = []
        self._schedule(fast_sim, fast_log)
        fast_sim.run()  # takes the fused run_fast path (no profiler)

        slow_sim = Simulator()
        slow_log = []
        self._schedule(slow_sim, slow_log)
        while True:  # the compatibility pop loop
            event = slow_sim.events.pop()
            if event is None:
                break
            slow_sim.now = event.time
            event.fn(*event.args)

        assert fast_log == slow_log
        assert fast_sim.now == slow_sim.now

    def test_run_fast_honours_budget_and_stop(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.events.push_raw(i, fired.append, (i,))
        assert sim.events.run_fast(sim, budget=4) == 4
        assert fired == [0, 1, 2, 3]
        sim._stop = True
        assert sim.events.run_fast(sim, budget=10) == 0
