"""Unit and chaos tests for the multi-process shard backend.

The integration suite proves whole-run byte-identity on ``processes``;
these tests pin the pieces underneath it — the versioned wire format and
its key-interning codec, the framed pipe transport, worker-death
forensics (SIGKILL mid-run must surface as a typed error and leave no
zombies), degradation warnings, and the PR-9 RSS budget honoured inside
workers.
"""

import dataclasses
import os
import signal

import pytest

from repro.engine import shard_ipc
from repro.engine.config import GpuConfig
from repro.engine.parallel_sim import BACKEND_ENV
from repro.engine.shard import ENSURE, LOOKUP, NOC, OrderKey, WARP_DONE
from repro.engine.shard_ipc import (
    Channel,
    ChannelClosed,
    DELIVER_ADD_WARP,
    DELIVER_CALL_TOKEN,
    DELIVER_FINISH_XLAT,
    KeyCodec,
    WIRE_VERSION,
    WireError,
    decode_advance,
    decode_deliveries,
    decode_reply,
    encode_advance,
    encode_deliveries,
    encode_reply,
)
from repro.engine.shard_proc import SHARD_RSS_ENV, ShardWorkerError
from repro.engine.simulator import SimulationError
from repro.harness.resources import ResourceBudgetExceeded
from repro.tenancy.manager import MultiTenantManager
from repro.tenancy.tenant import Tenant
from repro.workloads.base import Workload
from repro.workloads.suite import BENCHMARKS

#: L1-resident pair (same shape as the differential suite's HSR): the
#: window-dominated regime where the processes backend actually engages.
RESIDENT_SPEC = dataclasses.replace(
    BENCHMARKS["HS"], name="HSR", footprint_bytes=4096)
RESIDENT_SCALE = 0.2


def _mirror_codecs():
    """A parent/worker codec pair sharing a seed table, as after fork."""
    seed = KeyCodec(1)
    return seed.clone(1), seed.clone(-1)


def _proc_manager(warps=1, sms=8, shards=4, integrity=None):
    cfg = GpuConfig.baseline(num_sms=sms).with_policy("dws")
    pair = [Workload(RESIDENT_SPEC, RESIDENT_SCALE),
            Workload(RESIDENT_SPEC, RESIDENT_SCALE)]
    tenants = [Tenant(i, wl) for i, wl in enumerate(pair)]
    return MultiTenantManager(cfg, tenants, warps_per_sm=warps, seed=3,
                              integrity=integrity, shards=shards)


# ----------------------------------------------------------------------
# KeyCodec: identity-preserving OrderKey interning
# ----------------------------------------------------------------------
class TestKeyCodec:
    def test_roundtrip_preserves_chain_order(self):
        enc, dec = _mirror_codecs()
        root = OrderKey(3, 0, None)
        a = OrderKey(7, 1, root)
        b = OrderKey(7, 2, root)
        w = shard_ipc.Writer()
        enc.encode(w, a)
        enc.encode(w, b)
        r = shard_ipc.Reader(bytes(w.buf))
        da, db = dec.decode(r), dec.decode(r)
        assert (da.t, da.i) == (7, 1) and (db.t, db.i) == (7, 2)
        assert da.p is db.p  # shared parent decodes to one object
        assert da < db and not (db < da)

    def test_retransmission_returns_original_object(self):
        enc, dec = _mirror_codecs()
        key = OrderKey(5, 0, OrderKey(1, 0, None))
        w = shard_ipc.Writer()
        enc.encode(w, key)
        enc.encode(w, key)  # second send: known key, id only
        r = shard_ipc.Reader(bytes(w.buf))
        first, second = dec.decode(r), dec.decode(r)
        assert first is second  # identity, not mere equality

    def test_none_key(self):
        enc, dec = _mirror_codecs()
        w = shard_ipc.Writer()
        enc.encode(w, None)
        assert dec.decode(shard_ipc.Reader(bytes(w.buf))) is None

    def test_seeded_keys_transmit_as_bare_ids(self):
        seed = KeyCodec(1)
        key = OrderKey(2, 0, OrderKey(0, 0, None))
        seed.seed([key])
        enc, dec = seed.clone(1), seed.clone(-1)
        w = shard_ipc.Writer()
        enc.encode(w, key)
        # chain length 0 (u32) + leaf id (i64): nothing re-described.
        assert len(w.buf) == 4 + 8
        assert dec.decode(shard_ipc.Reader(bytes(w.buf))) is key

    def test_disjoint_id_ranges(self):
        parent, worker = _mirror_codecs()
        pk, wk = OrderKey(1, 0, None), OrderKey(1, 1, None)
        assert parent.intern(pk) > 0
        assert worker.intern(wk) < 0


# ----------------------------------------------------------------------
# Record codecs
# ----------------------------------------------------------------------
class TestRecordCodecs:
    def test_advance_roundtrip(self):
        enc, dec = _mirror_codecs()
        key = OrderKey(9, 0, None)
        body = encode_advance(enc, 1234, 99, (9, key, 2), True)
        time_limit, budget, limit_pos, single_ok = decode_advance(dec, body)
        assert (time_limit, budget, single_ok) == (1234, 99, True)
        t, dkey, sub = limit_pos
        assert (t, sub) == (9, 2) and (dkey.t, dkey.i) == (9, 0)

    def test_advance_without_limit_pos(self):
        enc, dec = _mirror_codecs()
        body = encode_advance(enc, shard_ipc.TIME_INF, 7, None, False)
        assert decode_advance(dec, body) == (
            shard_ipc.TIME_INF, 7, None, False)

    def test_reply_roundtrip_all_intent_codes(self):
        enc, dec = _mirror_codecs()
        key = OrderKey(40, 0, None)
        minted = OrderKey(40, 3, key)
        intents = [
            (40, key, 0, ENSURE, (1, 0x44)),
            (40, key, 1, LOOKUP, (0, 0x55, 3, 41, minted)),
            (41, key, 2, NOC, (7, 0xF000, True, 12, 1)),
            (42, key, 3, WARP_DONE, (0, 9)),
        ]
        body = encode_reply(enc, 17, (40, key, 0), 5, 1000, 2, 31415,
                            [(0, 10), (1, 20)], intents)
        reply = decode_reply(dec, body)
        assert reply["fired"] == 17
        assert reply["qlen"] == 5
        assert reply["floor_off"] == 1000
        assert reply["unfolded"] == 2
        assert reply["work_ns"] == 31415
        assert reply["instr"] == [(0, 10), (1, 20)]
        codes = [rec[3] for rec in reply["intents"]]
        assert codes == [ENSURE, LOOKUP, NOC, WARP_DONE]
        lookup = reply["intents"][1]
        assert lookup[4][:4] == (0, 0x55, 3, 41)
        assert (lookup[4][4].t, lookup[4][4].i) == (40, 3)
        noc = reply["intents"][2]
        assert noc[4] == (7, 0xF000, True, 12, 1)

    def test_deliveries_roundtrip_all_kinds(self):
        enc, dec = _mirror_codecs()
        key = OrderKey(8, 0, None)
        records = [
            (DELIVER_FINISH_XLAT, 8, key, 1, 100, (2, 0, 0x33, 0x77)),
            (DELIVER_CALL_TOKEN, 8, key, 2, 200, 5),
            (DELIVER_ADD_WARP, 9, key, 0, 0, (1, 4, 0, b"ops-pickle")),
        ]
        body = encode_deliveries(enc, records)
        out = decode_deliveries(dec, body)
        assert [rec[0] for rec in out] == [
            DELIVER_FINISH_XLAT, DELIVER_CALL_TOKEN, DELIVER_ADD_WARP]
        assert out[0][5] == (2, 0, 0x33, 0x77)
        assert out[1][5] == 5
        assert out[2][5] == (1, 4, 0, b"ops-pickle")
        # every record decodes to the same interned key object
        assert out[0][2] is out[1][2] is out[2][2]

    def test_unknown_intent_code_rejected(self):
        enc, _ = _mirror_codecs()
        with pytest.raises(WireError):
            encode_reply(enc, 0, None, 0, 0, 0, 0, [],
                         [(0, None, 0, 250, ())])


# ----------------------------------------------------------------------
# Channel framing
# ----------------------------------------------------------------------
class TestChannel:
    def _pipe_pair(self):
        a_r, b_w = os.pipe()
        b_r, a_w = os.pipe()
        return Channel(a_r, a_w), Channel(b_r, b_w)

    def test_send_recv_roundtrip(self):
        a, b = self._pipe_pair()
        try:
            a.send(shard_ipc.MSG_ADVANCE, b"payload")
            mtype, body = b.recv()
            assert (mtype, body) == (shard_ipc.MSG_ADVANCE, b"payload")
            b.send(shard_ipc.MSG_REPLY, b"")
            assert a.recv() == (shard_ipc.MSG_REPLY, b"")
        finally:
            a.close()
            b.close()

    def test_version_mismatch_raises_wire_error(self):
        a, b = self._pipe_pair()
        try:
            bad = shard_ipc._HDR.pack(0, WIRE_VERSION + 1, shard_ipc.MSG_REPLY)
            os.write(a.wfd, bad)
            with pytest.raises(WireError):
                b.recv()
        finally:
            a.close()
            b.close()

    def test_peer_close_raises_channel_closed(self):
        a, b = self._pipe_pair()
        a.close()
        with pytest.raises(ChannelClosed):
            b.recv()
        with pytest.raises(ChannelClosed):
            b.send(shard_ipc.MSG_REPLY, b"x")
        b.close()


# ----------------------------------------------------------------------
# Chaos: worker death mid-run
# ----------------------------------------------------------------------
class TestWorkerDeath:
    def test_sigkill_mid_window_raises_typed_error_no_zombies(
            self, monkeypatch):
        """SIGKILL a shard worker between windows: the run must fail with
        a typed, attributed error and the pool must reap every worker —
        no hang, no zombies."""
        from repro.engine import shard_proc

        monkeypatch.setenv(BACKEND_ENV, "processes")
        manager = _proc_manager()
        state = {"advances": 0, "pids": None}
        real_send = shard_proc.ProcPool.send_advance

        def killing_send(pool, remote, time_limit, budget, single_ok):
            state["advances"] += 1
            if state["pids"] is None:
                state["pids"] = [r.pid for r in pool.remotes]
            if state["advances"] == 5:
                os.kill(remote.pid, signal.SIGKILL)
            return real_send(pool, remote, time_limit, budget, single_ok)

        monkeypatch.setattr(shard_proc.ProcPool, "send_advance",
                            killing_send)
        with pytest.raises(ShardWorkerError) as info:
            manager.run()
        err = info.value
        assert isinstance(err, SimulationError)
        assert err.context.get("shard_id") is not None
        assert err.context.get("pid") in state["pids"]
        # every worker was SIGKILLed and reaped: waitpid finds no child
        assert state["pids"]
        for pid in state["pids"]:
            with pytest.raises(ChildProcessError):
                os.waitpid(pid, os.WNOHANG)
        pool = manager.sim._procs
        assert pool is not None and pool._closed
        manager.sim.close()  # idempotent after the failure teardown

    def test_closed_pool_refuses_reuse(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "processes")
        manager = _proc_manager()
        manager.run()
        manager.sim.close()
        with pytest.raises(SimulationError, match="closed"):
            manager.sim.run()


# ----------------------------------------------------------------------
# Degradation warnings
# ----------------------------------------------------------------------
class TestDegradation:
    def test_audit_hook_degrades_with_named_reason(self, monkeypatch):
        from repro.integrity import IntegrityConfig

        monkeypatch.setenv(BACKEND_ENV, "processes")
        manager = _proc_manager(
            integrity=IntegrityConfig(audit="cheap", audit_interval=64))
        with pytest.warns(RuntimeWarning, match="degraded to inline"):
            result = manager.run()
        assert result.total_cycles > 0
        assert manager.sim._procs is None  # never forked

    def test_degradation_result_matches_oracle(self, monkeypatch):
        serial = _proc_manager(shards=1).run()
        monkeypatch.setenv(BACKEND_ENV, "processes")
        manager = _proc_manager()
        sim = manager.sim
        # A stop_when predicate needs per-event polling: the processes
        # conductor cannot satisfy it, so the run degrades to inline.
        real_run = sim.run

        def run_with_predicate(until=None, stop_when=None, max_events=None):
            return real_run(until, stop_when or (lambda: False), max_events)

        monkeypatch.setattr(sim, "run", run_with_predicate)
        with pytest.warns(RuntimeWarning, match="stop_when"):
            degraded = manager.run()
        assert degraded.total_cycles == serial.total_cycles
        assert degraded.stats == serial.stats


# ----------------------------------------------------------------------
# RSS budget (PR-9 resource governance) inside workers
# ----------------------------------------------------------------------
class TestWorkerRssBudget:
    def test_worker_over_budget_raises_typed_error(self, monkeypatch):
        from repro.engine import shard_proc

        monkeypatch.setenv(BACKEND_ENV, "processes")
        monkeypatch.setenv(SHARD_RSS_ENV, "1")  # 1 MB: any worker exceeds
        monkeypatch.setattr(shard_proc, "_RSS_CHECK_PERIOD", 1)
        manager = _proc_manager()
        with pytest.raises(ResourceBudgetExceeded) as info:
            manager.run()
        assert "RSS" in str(info.value)
        assert info.value.context.get("shard_id") is not None
        assert manager.sim._procs._closed
        manager.sim.close()

    def test_invalid_budget_rejected(self, monkeypatch):
        from repro.engine.shard_proc import _rss_budget_from_env

        monkeypatch.setenv(SHARD_RSS_ENV, "lots")
        with pytest.raises(ValueError):
            _rss_budget_from_env()
        monkeypatch.setenv(SHARD_RSS_ENV, "-4")
        with pytest.raises(ValueError):
            _rss_budget_from_env()
        monkeypatch.setenv(SHARD_RSS_ENV, "512")
        assert _rss_budget_from_env() == 512.0
