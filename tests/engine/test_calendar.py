"""Calendar-queue kernel: differential equivalence, regions, recycling.

The calendar queue must be observationally identical to the seed heap
kernel (:class:`HeapEventQueue`) for every push/pop/cancel interleaving:
same events, same order, bit for bit.  These tests drive both kernels
through random schedules and through each corner of the calendar's three
storage regions (ring, overflow heap, past heap).
"""

import random

import pytest

from repro.engine.calendar import DEFAULT_WINDOW, CalendarQueue
from repro.engine.event import EventQueue, HeapEventQueue
from repro.engine.simulator import SimulationError, Simulator


def _noop():
    pass


def drain_labels(queue):
    """Pop everything, returning the (time, seq) identity sequence."""
    out = []
    while True:
        event = queue.pop()
        if event is None:
            return out
        out.append((event.time, event.seq))


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_schedule_matches_heap(self, seed):
        rng = random.Random(seed)
        cal, heap = EventQueue(), HeapEventQueue()
        now = 0
        popped_cal, popped_heap = [], []
        handles = []
        for step in range(2000):
            action = rng.random()
            if action < 0.55:
                # Mix of near-future (ring), far-future (overflow
                # heap) and same-cycle (FIFO tie-break) pushes.
                delay = rng.choice(
                    (0, 1, rng.randrange(64), rng.randrange(5 * DEFAULT_WINDOW))
                )
                handles.append((cal.push(now + delay, _noop),
                                heap.push(now + delay, _noop)))
            elif action < 0.75 and handles:
                pair = handles.pop(rng.randrange(len(handles)))
                for handle in pair:
                    handle.cancel()
            else:
                a, b = cal.pop(), heap.pop()
                if a is None:
                    assert b is None
                else:
                    assert (a.time, a.seq) == (b.time, b.seq)
                    now = a.time
        assert drain_labels(cal) == drain_labels(heap)

    def test_same_cycle_fifo_order(self):
        queue = EventQueue()
        events = [queue.push(7, _noop) for _ in range(100)]
        order = [queue.pop() for _ in range(100)]
        assert [e.seq for e in order] == [e.seq for e in events]

    def test_overflow_migration_preserves_fifo(self):
        # Events far beyond the window land in the overflow heap; once
        # the floor advances they migrate into ring buckets.  Events
        # later pushed directly to the same cycle must fire *after* the
        # migrated ones (lower seq first).
        queue = EventQueue()
        far = 3 * DEFAULT_WINDOW
        early_batch = [queue.push(far, _noop) for _ in range(8)]
        stepper = queue.push(DEFAULT_WINDOW + 1, _noop)
        assert queue.pop() is stepper  # floor advances past the window
        late_batch = [queue.push(far, _noop) for _ in range(8)]
        fired = [queue.pop() for _ in range(16)]
        assert fired == early_batch + late_batch


class TestRegions:
    def test_past_time_raw_push_still_sorts(self):
        # The raw queue API (no Simulator) accepts pushes behind the
        # floor; they sort before everything else.
        queue = EventQueue()
        queue.push(100, _noop)
        assert queue.pop().time == 100
        behind = queue.push(10, _noop)
        ahead = queue.push(150, _noop)
        assert queue.pop() is behind
        assert queue.pop() is ahead

    @pytest.mark.parametrize("delay", [0, 3, DEFAULT_WINDOW * 2])
    def test_cancellation_in_each_region(self, delay):
        queue = EventQueue()
        doomed = queue.push(delay, _noop)
        survivor = queue.push(delay, _noop)
        doomed.cancel()
        assert queue.pop() is survivor
        assert queue.pop() is None

    def test_cancelled_event_behind_front_cache(self):
        queue = EventQueue()
        first = queue.push(5, _noop)
        assert queue.peek_time() == 5  # primes the front cache
        first.cancel()
        second = queue.push(9, _noop)
        assert queue.peek_time() == 9
        assert queue.pop() is second

    def test_physical_size_counts_all_regions(self):
        calendar = CalendarQueue(window=16)
        queue = EventQueue(window=16)
        queue._calendar = calendar
        queue.push(1, _noop)          # ring
        queue.push(1000, _noop)       # overflow heap
        assert calendar.physical_size() == 2


class TestLiveCount:
    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        events = [queue.push(i, _noop) for i in range(10)]
        assert len(queue) == 10
        for event in events[:4]:
            event.cancel()
        assert len(queue) == 6
        events[0].cancel()  # double-cancel must not double-count
        assert len(queue) == 6

    def test_popped_event_late_cancel_is_noop(self):
        queue = EventQueue()
        event = queue.push(1, _noop)
        queue.push(2, _noop)
        assert queue.pop() is event
        event.cancel()  # already delivered: no accounting change
        assert len(queue) == 1

    def test_drain_ignores_cancelled_backlog(self):
        # Regression: drain()'s runaway check used to misfire when the
        # physical queue still held cancelled tombstones after exactly
        # max_events real events.
        sim = Simulator()
        for i in range(10):
            sim.at(i, _noop)
        for i in range(5):
            sim.at(20 + i, _noop).cancel()
        assert sim.drain(max_events=10) == 10


class TestRecycling:
    def test_fired_events_are_recycled(self):
        queue = EventQueue()
        queue.push(1, _noop)

        def pop_and_recycle(q):
            # Mirrors the run loop's call shape (one local reference).
            event = q.pop()
            q.recycle(event)

        pop_and_recycle(queue)
        if queue.free_list_size == 0:
            pytest.skip("recycling disabled on this interpreter")
        assert queue.free_list_size == 1
        reused = queue.push(2, _noop)
        assert queue.free_list_size == 0
        assert not reused.cancelled
        assert queue.pop() is reused

    def test_held_handle_is_never_recycled(self):
        queue = EventQueue()
        held = queue.push(1, _noop)
        event = queue.pop()
        queue.recycle(event)
        assert queue.free_list_size == 0  # `held` still references it
        assert held is event


class TestSimulatorIntegration:
    def test_stop_flag_halts_at_event_boundary(self):
        sim = Simulator()
        fired = []
        sim.at(1, fired.append, 1)
        sim.at(2, sim.stop)
        sim.at(3, fired.append, 3)
        assert sim.run() == 2
        assert fired == [1]
        assert len(sim.events) == 1  # the t=3 event is still pending

    def test_past_schedule_rejected(self):
        sim = Simulator()
        sim.at(5, _noop)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(4, _noop)


class TestCompletionBatchHalt:
    """stop() raised mid-batch must halt delivery at that callback.

    The unfolded kernel stops at the event boundary; a same-cycle
    completion batch is many logical events sharing one carrier, so the
    batch must freeze its undelivered tail when a callback calls
    ``stop()`` — otherwise the folded fast path observably over-delivers
    relative to the serial schedule (and to every sharded backend).
    """

    def test_stop_mid_batch_freezes_tail(self):
        sim = Simulator()
        fired = []
        sim.batch_at(5, fired.append, "a")
        sim.batch_at(5, lambda: (fired.append("b"), sim.stop()))
        sim.batch_at(5, fired.append, "c")
        sim.run()
        assert fired == ["a", "b"]

    def test_resume_delivers_frozen_tail(self):
        sim = Simulator()
        fired = []
        sim.batch_at(5, fired.append, "a")
        sim.batch_at(5, lambda: (fired.append("b"), sim.stop()))
        sim.batch_at(5, fired.append, "c")
        sim.batch_at(9, fired.append, "d")
        sim.run()
        assert fired == ["a", "b"]
        sim.run()  # resume: frozen tail first, then later work
        assert fired == ["a", "b", "c", "d"]
        assert sim.now == 9

    def test_halt_matches_unbatched_schedule(self):
        # Differential: the same three completions as plain events.
        plain = Simulator()
        fired_plain = []
        plain.at(5, fired_plain.append, "a")
        plain.at(5, lambda: (fired_plain.append("b"), plain.stop()))
        plain.at(5, fired_plain.append, "c")
        plain.run()

        batched = Simulator()
        fired_batched = []
        batched.batch_at(5, fired_batched.append, "a")
        batched.batch_at(5, lambda: (fired_batched.append("b"),
                                     batched.stop()))
        batched.batch_at(5, fired_batched.append, "c")
        batched.run()
        assert fired_batched == fired_plain == ["a", "b"]

    def test_halt_respected_under_delivery_observer(self):
        sim = Simulator()
        observed = []
        sim.events._batches.delivery_observer = observed.append
        fired = []
        sim.batch_at(3, fired.append, "a")
        sim.batch_at(3, lambda: (fired.append("b"), sim.stop()))
        sim.batch_at(3, fired.append, "c")
        sim.run(stop_when=lambda: sim._stop)
        assert fired == ["a", "b"]
        assert len(observed) == 2  # observer saw exactly the delivered two

    def test_next_run_clears_stale_halt(self):
        sim = Simulator()
        sim.stop()  # set halt without any batch in flight
        fired = []
        sim.batch_at(2, fired.append, "x")
        sim.run()
        assert fired == ["x"]
