"""Shared pytest configuration: the `slow` marker."""


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running simulation tests (deselect with -m 'not slow')"
    )
